//! Numerical verification of the benchmark kernels against host-side
//! reference implementations. The profiling interpreter is only a valid
//! substrate if the kernels actually compute their benchmarks.

use cayman_ir::interp::Interp;
use cayman_ir::ArrayId;
use cayman_workloads::by_name;

fn run(
    name: &str,
) -> (
    cayman_ir::Module,
    cayman_ir::interp::Memory,
    cayman_ir::interp::Memory,
) {
    let w = by_name(name).expect("benchmark exists");
    let before = w.memory();
    let after = {
        let mut interp = Interp::new(&w.module);
        interp.memory = w.memory();
        interp.run(&[]).expect("runs");
        interp.memory
    };
    (w.module, before, after)
}

fn arrays(m: &cayman_ir::Module) -> Vec<ArrayId> {
    m.array_ids().collect()
}

#[test]
fn atax_matches_reference() {
    let (m, before, after) = run("atax");
    let ids = arrays(&m);
    let (a, x, y) = (ids[0], ids[1], ids[2]);
    let (n, mm) = (28usize, 24usize);
    // y = Aᵀ(Ax)
    let mut yref = vec![0.0f64; mm];
    for i in 0..n {
        let tmp: f64 = (0..mm)
            .map(|j| before.get_f64(a, i * mm + j) * before.get_f64(x, j))
            .sum();
        for (j, yj) in yref.iter_mut().enumerate() {
            *yj += before.get_f64(a, i * mm + j) * tmp;
        }
    }
    for (j, &want) in yref.iter().enumerate() {
        let got = after.get_f64(y, j);
        assert!((got - want).abs() < 1e-9, "y[{j}]: {got} vs {want}");
    }
}

#[test]
fn mvt_matches_reference() {
    let (m, before, after) = run("mvt");
    let ids = arrays(&m);
    let (a, x1, x2, y1, y2) = (ids[0], ids[1], ids[2], ids[3], ids[4]);
    let n = 28usize;
    for i in 0..n {
        let r1: f64 = before.get_f64(x1, i)
            + (0..n)
                .map(|j| before.get_f64(a, i * n + j) * before.get_f64(y1, j))
                .sum::<f64>();
        let r2: f64 = before.get_f64(x2, i)
            + (0..n)
                .map(|j| before.get_f64(a, j * n + i) * before.get_f64(y2, j))
                .sum::<f64>();
        assert!((after.get_f64(x1, i) - r1).abs() < 1e-9, "x1[{i}]");
        assert!((after.get_f64(x2, i) - r2).abs() < 1e-9, "x2[{i}]");
    }
}

#[test]
fn covariance_matrix_is_symmetric_and_mean_centred() {
    let (m, _before, after) = run("covariance");
    let ids = arrays(&m);
    let (data, mean, cov) = (ids[0], ids[1], ids[2]);
    let (n, mm) = (20usize, 16usize);
    // data has been mean-centred in place: column means ≈ 0
    for j in 0..mm {
        let col_mean: f64 = (0..n).map(|i| after.get_f64(data, i * mm + j)).sum::<f64>() / n as f64;
        assert!(col_mean.abs() < 1e-9, "column {j} not centred: {col_mean}");
        let _ = after.get_f64(mean, j);
    }
    // covariance symmetric with non-negative diagonal
    for i in 0..mm {
        assert!(
            after.get_f64(cov, i * mm + i) >= -1e-12,
            "var[{i}] negative"
        );
        for j in 0..mm {
            let cij = after.get_f64(cov, i * mm + j);
            let cji = after.get_f64(cov, j * mm + i);
            assert!((cij - cji).abs() < 1e-9, "cov asymmetric at ({i},{j})");
        }
    }
}

#[test]
fn nw_matches_reference_dp() {
    let (m, before, after) = run("nw");
    let ids = arrays(&m);
    let (sa, sb, score) = (ids[0], ids[1], ids[2]);
    let n = 40usize;
    let d = n + 1;
    let mut dp = vec![0i64; d * d];
    for i in 0..=n {
        dp[i * d] = -(i as i64);
        dp[i] = -(i as i64);
    }
    for i in 1..=n {
        for j in 1..=n {
            let sc = if before.get_i64(sa, i - 1) == before.get_i64(sb, j - 1) {
                2
            } else {
                -1
            };
            dp[i * d + j] = (dp[(i - 1) * d + (j - 1)] + sc)
                .max(dp[(i - 1) * d + j] - 1)
                .max(dp[i * d + (j - 1)] - 1);
        }
    }
    for i in 0..=n {
        for j in 0..=n {
            assert_eq!(
                after.get_i64(score, i * d + j),
                dp[i * d + j],
                "score[{i}][{j}]"
            );
        }
    }
}

#[test]
fn gramschmidt_r_is_upper_triangular_and_q_normalised() {
    let (m, _before, after) = run("gramschmidt");
    let ids = arrays(&m);
    let (q, r) = (ids[1], ids[2]);
    let (n, mm) = (18usize, 14usize);
    // R strictly-lower entries were never written (zero-initialised)
    for i in 0..mm {
        for j in 0..i {
            assert_eq!(
                after.get_f64(r, i * mm + j),
                0.0,
                "R[{i}][{j}] below diagonal"
            );
        }
        assert!(after.get_f64(r, i * mm + i) > 0.0, "R[{i}][{i}] positive");
    }
    // Q columns have unit norm
    for k in 0..mm {
        let norm: f64 = (0..n).map(|i| after.get_f64(q, i * mm + k).powi(2)).sum();
        assert!((norm - 1.0).abs() < 1e-9, "‖Q[:, {k}]‖² = {norm}");
    }
}

#[test]
fn jacobi_2d_smooths_towards_interior_mean() {
    let (m, before, after) = run("jacobi-2d");
    let ids = arrays(&m);
    let a = ids[0];
    let n = 20usize;
    // Interior variance must strictly decrease under repeated averaging.
    let var = |mem: &cayman_ir::interp::Memory| -> f64 {
        let vals: Vec<f64> = (1..n - 1)
            .flat_map(|i| (1..n - 1).map(move |j| (i, j)))
            .map(|(i, j)| mem.get_f64(a, i * n + j))
            .collect();
        let mean = vals.iter().sum::<f64>() / vals.len() as f64;
        vals.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / vals.len() as f64
    };
    assert!(var(&after) < var(&before), "stencil must smooth the field");
}

#[test]
fn deriche_first_scan_matches_iir_closed_form() {
    let (m, before, after) = run("deriche");
    let ids = arrays(&m);
    let (img, y1) = (ids[0], ids[1]);
    let w = 24usize;
    // forward IIR along row 0: y[j] = 0.25·x[j] + 0.6·y[j−1]
    let mut acc = 0.0f64;
    for j in 0..w {
        acc = 0.25 * before.get_f64(img, j) + 0.6 * acc;
        // y1 row 0 is later overwritten by the vertical pass; instead verify
        // the vertical pass output at column 0 against its own recurrence
        // using the combined image. Simpler: check the horizontal result at
        // the last row, which the vertical pass writes last, so verify the
        // vertical recurrence directly instead.
        let _ = acc;
    }
    // vertical pass: y1[i][0] = 0.25·out[i][0] + 0.6·y1[i−1][0] where
    // out = y1h + y2h. Recompute out on the host from the input.
    let h = 20usize;
    let mut y1h = vec![0.0f64; h * w];
    for i in 0..h {
        let mut a = 0.0;
        for j in 0..w {
            a = 0.25 * before.get_f64(img, i * w + j) + 0.6 * a;
            y1h[i * w + j] = a;
        }
    }
    let mut y2h = vec![0.0f64; h * w];
    for i in 0..h {
        let mut a = 0.0;
        for j in (0..w).rev() {
            a = 0.25 * before.get_f64(img, i * w + j) + 0.6 * a;
            y2h[i * w + j] = a;
        }
    }
    let mut acc_v = 0.0f64;
    for i in 0..h {
        let out = y1h[i * w] + y2h[i * w];
        acc_v = 0.25 * out + 0.6 * acc_v;
        let got = after.get_f64(y1, i * w);
        assert!(
            (got - acc_v).abs() < 1e-9,
            "vertical scan row {i}: {got} vs {acc_v}"
        );
    }
}

#[test]
fn linear_alg_elimination_zeroes_the_lower_triangle() {
    let (m, _before, after) = run("linear-alg-mid-100x100-sp");
    let ids = arrays(&m);
    let a = ids[0];
    let n = 26usize;
    for k in 0..n - 1 {
        for i in (k + 1)..n {
            let v = after.get_f64(a, i * n + k);
            assert!(v.abs() < 1e-6, "A[{i}][{k}] = {v} not eliminated");
        }
    }
}

#[test]
fn md_forces_are_finite_and_antisymmetric_in_expectation() {
    let (m, _before, after) = run("md");
    let ids = arrays(&m);
    let (fx, fy, fz) = (ids[3], ids[4], ids[5]);
    for i in 0..48usize {
        for arr in [fx, fy, fz] {
            let v = after.get_f64(arr, i);
            assert!(v.is_finite(), "force[{i}] not finite");
        }
    }
}

#[test]
fn cjpeg_rose_bit_counts_are_bounded() {
    let (m, _before, after) = run("cjpeg-rose7-preset");
    let ids = arrays(&m);
    let bits = ids[4];
    for i in 0..24usize {
        let b = after.get_i64(bits, i);
        // each of 24 coefficients contributes a category of ≤ 8 bits
        assert!((0..=24 * 8).contains(&b), "row {i}: {b}");
    }
}
