//! Differential proof that the default pre-decoded profiling engine is
//! observationally identical to the reference tree walker on every
//! benchmark of the evaluation — bit-identical block counts, cycle totals
//! and return values under realistic inputs — and on error paths.

use cayman_ir::builder::ModuleBuilder;
use cayman_ir::interp::{ExecProfile, Interp, Value};
use cayman_ir::{Module, Type};

fn values_bit_equal(a: &Option<Value>, b: &Option<Value>) -> bool {
    match (a, b) {
        (Some(Value::F(x)), Some(Value::F(y))) => x.to_bits() == y.to_bits(),
        (x, y) => x == y,
    }
}

fn assert_profiles_identical(name: &str, d: &ExecProfile, r: &ExecProfile) {
    assert_eq!(
        d.block_counts, r.block_counts,
        "{name}: block counts diverge"
    );
    assert_eq!(d.total_cycles, r.total_cycles, "{name}: cycles diverge");
    assert!(
        values_bit_equal(&d.return_value, &r.return_value),
        "{name}: return values diverge: {:?} vs {:?}",
        d.return_value,
        r.return_value
    );
}

/// Every benchmark decodes, and the decoded profile is bit-identical to the
/// walker's under the same realistic memory image.
#[test]
fn decoded_engine_matches_walker_on_all_benchmarks() {
    for w in cayman_workloads::all() {
        let mut dec = Interp::new(&w.module);
        assert_eq!(
            dec.engine_name(),
            "decoded",
            "{}: benchmark must not fall back to the walker",
            w.name
        );
        dec.memory = w.memory();
        let dp = dec
            .run(&[])
            .unwrap_or_else(|e| panic!("{}: decoded run failed: {e}", w.name));

        let mut walk = Interp::reference(&w.module);
        assert_eq!(walk.engine_name(), "reference");
        walk.memory = w.memory();
        let rp = walk.run(&[]).expect("reference run succeeds");

        assert_profiles_identical(w.name, &dp, &rp);
        assert!(dp.blocks_executed() > 0, "{}: nothing executed", w.name);
    }
}

fn run_both(
    m: &Module,
    limit: Option<u64>,
) -> (Result<ExecProfile, String>, Result<ExecProfile, String>) {
    let mut dec = Interp::new(m);
    assert_eq!(dec.engine_name(), "decoded");
    let mut walk = Interp::reference(m);
    if let Some(l) = limit {
        dec = dec.with_step_limit(l);
        walk = walk.with_step_limit(l);
    }
    (
        dec.run(&[]).map_err(|e| e.message),
        walk.run(&[]).map_err(|e| e.message),
    )
}

/// Division by zero errors identically under both engines.
#[test]
fn division_by_zero_errors_identically() {
    let mut mb = ModuleBuilder::new("t");
    mb.function("main", &[], Some(Type::I64), |fb| {
        let one = fb.iconst(1);
        let zero = fb.iconst(0);
        let q = fb.sdiv(one, zero);
        fb.ret(Some(q));
    });
    let m = mb.finish();
    m.verify().expect("verifies");
    let (d, r) = run_both(&m, None);
    let de = d.expect_err("decoded errors");
    let re = r.expect_err("walker errors");
    assert_eq!(de, re);
    assert!(de.contains("division by zero"), "{de}");
}

/// Out-of-bounds indexing errors identically — same message, same blamed
/// dimension and array.
#[test]
fn out_of_bounds_access_errors_identically() {
    let mut mb = ModuleBuilder::new("t");
    let a = mb.array("A", Type::F64, &[4, 3]);
    mb.function("main", &[], None, |fb| {
        fb.counted_loop(0, 10, 1, |fb, i| {
            let v = fb.load_idx(a, &[i, i]);
            fb.store_idx(a, &[i, i], v);
        });
        fb.ret(None);
    });
    let m = mb.finish();
    m.verify().expect("verifies");
    let (d, r) = run_both(&m, None);
    let de = d.expect_err("decoded errors");
    let re = r.expect_err("walker errors");
    assert_eq!(de, re);
    assert!(de.contains("out of bounds") && de.contains("`A`"), "{de}");
}

/// Step-limit exhaustion triggers at the identical step under both engines.
#[test]
fn step_limit_errors_identically() {
    let mut mb = ModuleBuilder::new("t");
    mb.function("main", &[], Some(Type::I64), |fb| {
        let zero = fb.iconst(0);
        let f = fb.counted_loop_carry(0, 1_000_000, 1, &[(Type::I64, zero)], |fb, i, c| {
            vec![fb.add(c[0], i)]
        });
        fb.ret(Some(f[0]));
    });
    let m = mb.finish();
    m.verify().expect("verifies");
    for limit in [1, 7, 100, 12_345] {
        let (d, r) = run_both(&m, Some(limit));
        let de = d.expect_err("decoded hits the limit");
        let re = r.expect_err("walker hits the limit");
        assert_eq!(de, re, "limit {limit}");
        assert!(de.contains("step limit exceeded"), "{de}");
    }
    // With a generous limit both succeed identically.
    let (d, r) = run_both(&m, Some(100_000_000));
    assert_profiles_identical("sum", &d.expect("runs"), &r.expect("runs"));
}

/// Entry-arity mismatches error identically (the check runs before either
/// engine dispatches).
#[test]
fn entry_arity_errors_identically() {
    let mut mb = ModuleBuilder::new("t");
    mb.function("main", &[Type::I64], Some(Type::I64), |fb| {
        let p = fb.param(0);
        fb.ret(Some(p));
    });
    let m = mb.finish();
    m.verify().expect("verifies");
    let (d, r) = run_both(&m, None);
    let de = d.expect_err("decoded rejects missing args");
    let re = r.expect_err("walker rejects missing args");
    assert_eq!(de, re);
    assert!(de.contains("expects 1 args, got 0"), "{de}");
}
