//! Printer/parser round-trip over the entire benchmark suite: every one of
//! the 28 workload modules must survive `to_text` → `parse_text` with
//! structure, verification and profiled cycle counts intact.

use cayman_ir::interp::Interp;
use cayman_ir::Module;

#[test]
fn every_workload_round_trips_through_text() {
    for w in cayman_workloads::all() {
        let text = w.module.to_text();
        let parsed = Module::parse_text(&text).unwrap_or_else(|e| panic!("{}: {e}", w.name));
        parsed
            .verify()
            .unwrap_or_else(|e| panic!("{}: parsed module broken: {e}", w.name));

        assert_eq!(
            parsed.functions.len(),
            w.module.functions.len(),
            "{}",
            w.name
        );
        assert_eq!(parsed.arrays.len(), w.module.arrays.len(), "{}", w.name);

        // The parsed module computes the same thing: identical cycle count
        // under identical inputs (fills apply by ArrayId, which the parser
        // preserves in declaration order).
        let mut original = Interp::new(&w.module);
        original.memory = w.memory();
        let p1 = original
            .run(&[])
            .unwrap_or_else(|e| panic!("{}: {e}", w.name));

        let mut reparsed = Interp::new(&parsed);
        reparsed.memory = {
            let mut mem = cayman_ir::interp::Memory::for_module(&parsed);
            for &(a, fill) in &w.fills {
                cayman_workloads::data::apply(&parsed, &mut mem, a, fill, 0xCA_1321);
            }
            mem
        };
        let p2 = reparsed
            .run(&[])
            .unwrap_or_else(|e| panic!("{} (parsed): {e}", w.name));
        assert_eq!(
            p1.total_cycles, p2.total_cycles,
            "{}: cycles diverge",
            w.name
        );
        assert_eq!(
            p1.block_counts, p2.block_counts,
            "{}: counts diverge",
            w.name
        );
    }
}

#[test]
fn round_trip_is_a_fixpoint_for_every_workload() {
    for w in cayman_workloads::all() {
        let once =
            Module::parse_text(&w.module.to_text()).unwrap_or_else(|e| panic!("{}: {e}", w.name));
        let twice =
            Module::parse_text(&once.to_text()).unwrap_or_else(|e| panic!("{}: {e}", w.name));
        assert_eq!(once.to_text(), twice.to_text(), "{}", w.name);
    }
}
