//! Printer/parser round-trip over the entire benchmark suite — the 28
//! builder workloads, the text-fixture corpus, and *generated* programs
//! (`testkit::program` with shrinking): every module must survive
//! `to_text` → `parse_text` with structure, verification and profiled
//! cycle counts intact, and the printed text must be a parse fixpoint.

use cayman_ir::interp::Interp;
use cayman_ir::Module;
use cayman_testkit::program::arbitrary_module;
use cayman_testkit::{prop_assert, prop_assert_eq, prop_check};

#[test]
fn every_workload_round_trips_through_text() {
    for w in cayman_workloads::all() {
        let text = w.module.to_text();
        let parsed = Module::parse_text(&text).unwrap_or_else(|e| panic!("{}: {e}", w.name));
        parsed
            .verify()
            .unwrap_or_else(|e| panic!("{}: parsed module broken: {e}", w.name));

        assert_eq!(
            parsed.functions.len(),
            w.module.functions.len(),
            "{}",
            w.name
        );
        assert_eq!(parsed.arrays.len(), w.module.arrays.len(), "{}", w.name);

        // The parsed module computes the same thing: identical cycle count
        // under identical inputs (fills apply by ArrayId, which the parser
        // preserves in declaration order).
        let mut original = Interp::new(&w.module);
        original.memory = w.memory();
        let p1 = original
            .run(&[])
            .unwrap_or_else(|e| panic!("{}: {e}", w.name));

        let mut reparsed = Interp::new(&parsed);
        reparsed.memory = {
            let mut mem = cayman_ir::interp::Memory::for_module(&parsed);
            for &(a, fill) in &w.fills {
                cayman_workloads::data::apply(&parsed, &mut mem, a, fill, 0xCA_1321);
            }
            mem
        };
        let p2 = reparsed
            .run(&[])
            .unwrap_or_else(|e| panic!("{} (parsed): {e}", w.name));
        assert_eq!(
            p1.total_cycles, p2.total_cycles,
            "{}: cycles diverge",
            w.name
        );
        assert_eq!(
            p1.block_counts, p2.block_counts,
            "{}: counts diverge",
            w.name
        );
    }
}

#[test]
fn round_trip_is_a_fixpoint_for_every_workload() {
    for w in cayman_workloads::all() {
        let once =
            Module::parse_text(&w.module.to_text()).unwrap_or_else(|e| panic!("{}: {e}", w.name));
        let twice =
            Module::parse_text(&once.to_text()).unwrap_or_else(|e| panic!("{}: {e}", w.name));
        assert_eq!(once.to_text(), twice.to_text(), "{}", w.name);
    }
}

/// The corpus loader already parses each `.cir` file; here the parsed
/// modules must also re-print to a parse fixpoint (corpus files are written
/// by `to_text`, so the first parse is the identity on them).
#[test]
fn corpus_kernels_round_trip_as_fixpoints() {
    let ws = cayman_workloads::corpus::corpus();
    assert!(ws.len() >= 100, "corpus shrank: {}", ws.len());
    for w in ws {
        let text = w.module.to_text();
        let again = Module::parse_text(&text).unwrap_or_else(|e| panic!("{}: {e}", w.name));
        assert_eq!(again.to_text(), text, "{}: not a fixpoint", w.name);
    }
}

/// `parse(print(m)) == m` over *generated* modules: structure counts match,
/// the reparsed module verifies, semantics are preserved bit-for-bit
/// (cycles, block counts, return value under zeroed inputs), and printing
/// is a fixpoint after the first parse (value numbering may differ once —
/// parse renumbers in textual order). Failures shrink to a minimal seed.
#[test]
fn generated_modules_round_trip_through_text() {
    prop_check!(cases = 48, |rng| {
        let m = arbitrary_module(rng);
        let text = m.to_text();
        let parsed = match Module::parse_text(&text) {
            Ok(p) => p,
            Err(e) => {
                prop_assert!(false, "printed module does not parse: {e}\n{text}");
                unreachable!()
            }
        };
        if let Err(e) = parsed.verify() {
            prop_assert!(false, "reparsed module broken: {e}\n{text}");
        }
        prop_assert_eq!(parsed.functions.len(), m.functions.len());
        prop_assert_eq!(parsed.arrays.len(), m.arrays.len());
        for (a, b) in parsed.functions.iter().zip(&m.functions) {
            prop_assert_eq!(a.blocks.len(), b.blocks.len());
            prop_assert_eq!(a.instrs.len(), b.instrs.len());
        }

        let p1 = match Interp::new(&m).run(&[]) {
            Ok(p) => p,
            Err(e) => {
                prop_assert!(false, "original does not run: {e}\n{text}");
                unreachable!()
            }
        };
        let p2 = match Interp::new(&parsed).run(&[]) {
            Ok(p) => p,
            Err(e) => {
                prop_assert!(false, "reparsed does not run: {e}\n{text}");
                unreachable!()
            }
        };
        prop_assert_eq!(p1.total_cycles, p2.total_cycles);
        prop_assert_eq!(p1.block_counts, p2.block_counts);
        prop_assert!(
            match (&p1.return_value, &p2.return_value) {
                (Some(cayman_ir::interp::Value::F(x)), Some(cayman_ir::interp::Value::F(y))) =>
                    x.to_bits() == y.to_bits(),
                (x, y) => x == y,
            },
            "return values diverge: {:?} vs {:?}\n{text}",
            p1.return_value,
            p2.return_value
        );

        let twice = match Module::parse_text(&parsed.to_text()) {
            Ok(p) => p,
            Err(e) => {
                prop_assert!(false, "second parse failed: {e}");
                unreachable!()
            }
        };
        prop_assert_eq!(twice.to_text(), parsed.to_text());
        Ok(())
    });
}
