//! Length-prefixed framing and the request/response wire protocol spoken
//! between [`crate::server`] and [`crate::client`].
//!
//! ## Framing
//!
//! Every message is one frame: a `u32` little-endian payload length, then
//! the payload. Frames above [`MAX_FRAME`] bytes are rejected (a corrupt or
//! hostile peer must not drive allocations). A clean EOF *between* frames
//! is a normal connection close.
//!
//! ## Payloads
//!
//! Requests open with `version u8, opcode u8`:
//!
//! | opcode | body |
//! |---|---|
//! | `1` SELECT   | module text (length-prefixed UTF-8, the `ir::parse` surface) |
//! | `2` STATS    | empty |
//! | `3` PING     | empty |
//! | `4` SHUTDOWN | empty |
//! | `5` HEALTH   | empty |
//! | `6` METRICS  | empty |
//!
//! Responses open with `version u8, status u8` (`0` ok / `1` error). An
//! error body is a length-prefixed message. A SELECT ok body carries
//! `framework_reused u8`, per-request counters (`model_evals`,
//! `cache_hits`, `cache_misses`, `disk_hits` as `u64`s) and the encoded
//! Pareto front ([`crate::codec::encode_front`] — bit-exact `f64`s). A
//! STATS ok body carries the server's lifetime counters and, when a store
//! is attached, its [`StoreStats`]. A HEALTH ok body carries a liveness
//! triple; a METRICS ok body carries the Prometheus-style text exposition
//! as a length-prefixed UTF-8 blob.
//!
//! ## Request ids (additive evolution)
//!
//! Every response frame ends with a trailing `u64`: the **server-assigned
//! request id**, also tagged on the server's spans and slow-request log so
//! a client-side stall can be correlated with the server-side trace.
//! Evolution is strictly additive: requests are unchanged (old frames
//! decode and get served — pinned by `tests/wire_compat.rs`), and decoders
//! that predate the trailer ignore trailing bytes while new decoders treat
//! a missing trailer as id `0`.

use crate::codec::{self, Dec, DecodeError, Enc, VERSION};
use crate::disk::StoreStats;
use cayman_select::Solution;
use std::fmt;
use std::io::{self, Read, Write};

/// Hard cap on a frame payload (64 MiB — far above any real module or
/// front, far below an allocation bomb).
pub const MAX_FRAME: u32 = 64 << 20;

/// Request opcodes.
pub mod opcode {
    /// Analyse + select a textual IR module.
    pub const SELECT: u8 = 1;
    /// Server + store counter snapshot.
    pub const STATS: u8 = 2;
    /// Liveness probe.
    pub const PING: u8 = 3;
    /// Orderly server shutdown.
    pub const SHUTDOWN: u8 = 4;
    /// Health summary (liveness + uptime + request count).
    pub const HEALTH: u8 = 5;
    /// Prometheus-style metrics exposition.
    pub const METRICS: u8 = 6;
}

/// Anything that can go wrong on the wire.
#[derive(Debug)]
pub enum WireError {
    /// Socket-level failure.
    Io(io::Error),
    /// Payload failed to decode.
    Decode(DecodeError),
    /// Peer announced a frame above [`MAX_FRAME`].
    FrameTooLarge(u32),
    /// Structurally valid bytes that violate the protocol.
    Protocol(&'static str),
    /// The server answered with an error message.
    Server(String),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "io: {e}"),
            WireError::Decode(e) => write!(f, "decode: {e}"),
            WireError::FrameTooLarge(n) => write!(f, "frame of {n} bytes exceeds cap"),
            WireError::Protocol(what) => write!(f, "protocol violation: {what}"),
            WireError::Server(msg) => write!(f, "server error: {msg}"),
        }
    }
}

impl From<io::Error> for WireError {
    fn from(e: io::Error) -> Self {
        WireError::Io(e)
    }
}

impl From<DecodeError> for WireError {
    fn from(e: DecodeError) -> Self {
        WireError::Decode(e)
    }
}

/// Writes one frame (length prefix + payload) and flushes.
///
/// # Errors
///
/// Propagates socket write failures.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    let len = payload.len() as u32;
    w.write_all(&len.to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one frame. `Ok(None)` is a clean EOF before any length byte — the
/// peer closed between frames.
///
/// # Errors
///
/// Fails on socket errors, mid-frame EOF, or an oversized announcement.
pub fn read_frame(r: &mut impl Read) -> Result<Option<Vec<u8>>, WireError> {
    let mut len = [0u8; 4];
    match r.read_exact(&mut len) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e.into()),
    }
    let len = u32::from_le_bytes(len);
    if len > MAX_FRAME {
        return Err(WireError::FrameTooLarge(len));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

/// One client request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Analyse + select this textual IR module.
    Select {
        /// The module in the `ir::parse` surface syntax.
        module_text: String,
    },
    /// Counter snapshot.
    Stats,
    /// Liveness probe.
    Ping,
    /// Orderly shutdown.
    Shutdown,
    /// Health summary.
    Health,
    /// Metrics exposition.
    Metrics,
}

/// Per-SELECT reply: the front plus enough counters to tell a cold request
/// from a memory-warm or disk-warm one.
#[derive(Debug, Clone)]
pub struct SelectReply {
    /// Server-assigned request id (frame trailer; `0` from a pre-telemetry
    /// server). Matches the id on the server's spans and slow-request log.
    pub request_id: u64,
    /// The selection Pareto front, bit-exact.
    pub front: Vec<Solution>,
    /// Whether the server reused an already-analysed `Framework` for this
    /// module text (memory-warm).
    pub framework_reused: bool,
    /// `accel(v, R)` model evaluations this request ran (0 ⇒ fully warm).
    pub model_evals: u64,
    /// Design-cache hits during this request's selection.
    pub cache_hits: u64,
    /// Design-cache memory-level misses during this request's selection.
    pub cache_misses: u64,
    /// Misses answered by the disk store during this request.
    pub disk_hits: u64,
}

/// STATS reply: server lifetime counters plus the store's, when attached.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StatsReply {
    /// Server-assigned request id (frame trailer; not part of the body).
    pub request_id: u64,
    /// Total requests served (all opcodes).
    pub requests: u64,
    /// Analysed frameworks currently cached.
    pub fw_cached: u64,
    /// SELECTs that reused a cached framework.
    pub fw_hits: u64,
    /// SELECTs that had to analyse from scratch.
    pub fw_misses: u64,
    /// Disk-store counters, when a store is attached.
    pub store: Option<StoreStats>,
}

/// HEALTH reply: the minimum a load balancer or probe needs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HealthReply {
    /// Server-assigned request id (frame trailer; not part of the body).
    pub request_id: u64,
    /// Whether the server considers itself serviceable (currently always
    /// true when it can answer at all; reserved for load-shedding states).
    pub healthy: bool,
    /// Nanoseconds since the server started.
    pub uptime_nanos: u64,
    /// Total requests served (all opcodes).
    pub requests: u64,
}

/// METRICS reply: the Prometheus-style text exposition (see
/// `cayman_obs::registry::MetricsSnapshot::to_prometheus`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsReply {
    /// Server-assigned request id (frame trailer; not part of the body).
    pub request_id: u64,
    /// The exposition text.
    pub text: String,
}

/// One server response.
#[derive(Debug, Clone)]
pub enum Response {
    /// SELECT succeeded.
    Select(SelectReply),
    /// STATS succeeded.
    Stats(StatsReply),
    /// PING succeeded.
    Pong,
    /// SHUTDOWN acknowledged (the server exits after sending this).
    ShuttingDown,
    /// HEALTH succeeded.
    Health(HealthReply),
    /// METRICS succeeded.
    Metrics(MetricsReply),
    /// The request failed (parse error, analysis error, bad opcode…).
    Error(String),
}

const STATUS_OK: u8 = 0;
const STATUS_ERR: u8 = 1;

// ok-body tags, so responses are self-describing independent of request
// pipelining
const BODY_SELECT: u8 = 1;
const BODY_STATS: u8 = 2;
const BODY_PONG: u8 = 3;
const BODY_SHUTDOWN: u8 = 4;
const BODY_HEALTH: u8 = 5;
const BODY_METRICS: u8 = 6;

/// Serializes a request payload.
pub fn encode_request(req: &Request) -> Vec<u8> {
    let mut e = Enc::new();
    e.u8(VERSION);
    match req {
        Request::Select { module_text } => {
            e.u8(opcode::SELECT);
            e.blob(module_text.as_bytes());
        }
        Request::Stats => e.u8(opcode::STATS),
        Request::Ping => e.u8(opcode::PING),
        Request::Shutdown => e.u8(opcode::SHUTDOWN),
        Request::Health => e.u8(opcode::HEALTH),
        Request::Metrics => e.u8(opcode::METRICS),
    }
    e.finish()
}

/// Parses a request payload.
///
/// # Errors
///
/// Fails on version skew, unknown opcodes, or malformed bodies.
pub fn decode_request(payload: &[u8]) -> Result<Request, WireError> {
    let mut d = Dec::new(payload);
    let version = d.u8()?;
    if version != VERSION {
        return Err(WireError::Protocol("request version mismatch"));
    }
    let req = match d.u8()? {
        opcode::SELECT => Request::Select {
            module_text: String::from_utf8(d.blob()?.to_vec())
                .map_err(|_| WireError::Protocol("module text is not UTF-8"))?,
        },
        opcode::STATS => Request::Stats,
        opcode::PING => Request::Ping,
        opcode::SHUTDOWN => Request::Shutdown,
        opcode::HEALTH => Request::Health,
        opcode::METRICS => Request::Metrics,
        _ => return Err(WireError::Protocol("unknown opcode")),
    };
    if d.remaining() != 0 {
        return Err(WireError::Protocol("trailing bytes after request"));
    }
    Ok(req)
}

fn encode_store_stats(e: &mut Enc, stats: &StoreStats) {
    e.u64(stats.hits);
    e.u64(stats.misses);
    e.u64(stats.corrupt);
    e.u64(stats.version_skew);
    e.u64(stats.key_mismatches);
    e.u64(stats.writes);
    e.u64(stats.evictions);
    e.u64(stats.evicted_bytes);
}

fn decode_store_stats(d: &mut Dec) -> Result<StoreStats, DecodeError> {
    Ok(StoreStats {
        hits: d.u64()?,
        misses: d.u64()?,
        corrupt: d.u64()?,
        version_skew: d.u64()?,
        key_mismatches: d.u64()?,
        writes: d.u64()?,
        evictions: d.u64()?,
        evicted_bytes: d.u64()?,
    })
}

/// Serializes a response payload, appending `request_id` as the frame
/// trailer. The ids carried *inside* reply structs are ignored here — the
/// trailer is the single source of truth and [`decode_response`] copies it
/// back into the decoded reply.
pub fn encode_response(resp: &Response, request_id: u64) -> Vec<u8> {
    let mut e = Enc::new();
    e.u8(VERSION);
    match resp {
        Response::Error(msg) => {
            e.u8(STATUS_ERR);
            e.blob(msg.as_bytes());
        }
        Response::Select(r) => {
            e.u8(STATUS_OK);
            e.u8(BODY_SELECT);
            e.u8(u8::from(r.framework_reused));
            e.u64(r.model_evals);
            e.u64(r.cache_hits);
            e.u64(r.cache_misses);
            e.u64(r.disk_hits);
            codec::encode_front(&mut e, &r.front);
        }
        Response::Stats(r) => {
            e.u8(STATUS_OK);
            e.u8(BODY_STATS);
            e.u64(r.requests);
            e.u64(r.fw_cached);
            e.u64(r.fw_hits);
            e.u64(r.fw_misses);
            match &r.store {
                Some(s) => {
                    e.u8(1);
                    encode_store_stats(&mut e, s);
                }
                None => e.u8(0),
            }
        }
        Response::Pong => {
            e.u8(STATUS_OK);
            e.u8(BODY_PONG);
        }
        Response::ShuttingDown => {
            e.u8(STATUS_OK);
            e.u8(BODY_SHUTDOWN);
        }
        Response::Health(r) => {
            e.u8(STATUS_OK);
            e.u8(BODY_HEALTH);
            e.u8(u8::from(r.healthy));
            e.u64(r.uptime_nanos);
            e.u64(r.requests);
        }
        Response::Metrics(r) => {
            e.u8(STATUS_OK);
            e.u8(BODY_METRICS);
            e.blob(r.text.as_bytes());
        }
    }
    e.u64(request_id);
    e.finish()
}

/// A decoded response plus its frame-trailer request id (`0` when the
/// sender predates request ids — the trailer is strictly additive).
#[derive(Debug, Clone)]
pub struct DecodedResponse {
    /// The response body.
    pub response: Response,
    /// Server-assigned request id, also copied into the reply structs that
    /// carry one.
    pub request_id: u64,
}

/// Parses a response payload.
///
/// # Errors
///
/// Fails on version skew or malformed bodies. A server-reported error
/// becomes [`WireError::Server`] at the call site, not here — it decodes
/// into [`Response::Error`].
pub fn decode_response(payload: &[u8]) -> Result<DecodedResponse, WireError> {
    let mut d = Dec::new(payload);
    let version = d.u8()?;
    if version != VERSION {
        return Err(WireError::Protocol("response version mismatch"));
    }
    let mut response = match d.u8()? {
        STATUS_ERR => Response::Error(String::from_utf8_lossy(d.blob()?).into_owned()),
        STATUS_OK => match d.u8()? {
            BODY_SELECT => {
                let framework_reused = d.u8()? != 0;
                let model_evals = d.u64()?;
                let cache_hits = d.u64()?;
                let cache_misses = d.u64()?;
                let disk_hits = d.u64()?;
                let front = codec::decode_front(&mut d)?;
                Response::Select(SelectReply {
                    request_id: 0,
                    front,
                    framework_reused,
                    model_evals,
                    cache_hits,
                    cache_misses,
                    disk_hits,
                })
            }
            BODY_STATS => {
                let requests = d.u64()?;
                let fw_cached = d.u64()?;
                let fw_hits = d.u64()?;
                let fw_misses = d.u64()?;
                let store = if d.u8()? != 0 {
                    Some(decode_store_stats(&mut d)?)
                } else {
                    None
                };
                Response::Stats(StatsReply {
                    request_id: 0,
                    requests,
                    fw_cached,
                    fw_hits,
                    fw_misses,
                    store,
                })
            }
            BODY_PONG => Response::Pong,
            BODY_SHUTDOWN => Response::ShuttingDown,
            BODY_HEALTH => Response::Health(HealthReply {
                request_id: 0,
                healthy: d.u8()? != 0,
                uptime_nanos: d.u64()?,
                requests: d.u64()?,
            }),
            BODY_METRICS => Response::Metrics(MetricsReply {
                request_id: 0,
                text: String::from_utf8(d.blob()?.to_vec())
                    .map_err(|_| WireError::Protocol("metrics text is not UTF-8"))?,
            }),
            _ => return Err(WireError::Protocol("unknown response body tag")),
        },
        _ => return Err(WireError::Protocol("unknown response status")),
    };
    // the additive request-id trailer; absent in frames from pre-telemetry
    // senders, which decode as id 0
    let request_id = if d.remaining() >= 8 { d.u64()? } else { 0 };
    match &mut response {
        Response::Select(r) => r.request_id = request_id,
        Response::Stats(r) => r.request_id = request_id,
        Response::Health(r) => r.request_id = request_id,
        Response::Metrics(r) => r.request_id = request_id,
        Response::Pong | Response::ShuttingDown | Response::Error(_) => {}
    }
    Ok(DecodedResponse {
        response,
        request_id,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_roundtrip_and_eof_is_clean() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut r = buf.as_slice();
        assert_eq!(read_frame(&mut r).unwrap().as_deref(), Some(&b"hello"[..]));
        assert_eq!(read_frame(&mut r).unwrap().as_deref(), Some(&b""[..]));
        assert!(read_frame(&mut r).unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn oversized_frame_is_rejected_without_allocating() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(MAX_FRAME + 1).to_le_bytes());
        assert!(matches!(
            read_frame(&mut buf.as_slice()),
            Err(WireError::FrameTooLarge(_))
        ));
    }

    #[test]
    fn mid_frame_eof_is_an_error() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"truncated-frame").unwrap();
        buf.truncate(7);
        assert!(matches!(
            read_frame(&mut buf.as_slice()),
            Err(WireError::Io(_))
        ));
    }

    #[test]
    fn requests_roundtrip() {
        for req in [
            Request::Select {
                module_text: "func @f() { ... }".into(),
            },
            Request::Stats,
            Request::Ping,
            Request::Shutdown,
            Request::Health,
            Request::Metrics,
        ] {
            assert_eq!(decode_request(&encode_request(&req)).unwrap(), req);
        }
    }

    #[test]
    fn responses_roundtrip() {
        let reply = Response::Select(SelectReply {
            request_id: 0,
            front: vec![Solution::default()],
            framework_reused: true,
            model_evals: 7,
            cache_hits: 9,
            cache_misses: 3,
            disk_hits: 2,
        });
        let decoded = decode_response(&encode_response(&reply, 41)).unwrap();
        assert_eq!(decoded.request_id, 41);
        match decoded.response {
            Response::Select(r) => {
                assert!(r.framework_reused);
                assert_eq!((r.model_evals, r.cache_hits, r.cache_misses), (7, 9, 3));
                assert_eq!(r.disk_hits, 2);
                assert_eq!(r.front.len(), 1);
                assert_eq!(r.request_id, 41, "trailer id copied into the reply");
            }
            other => panic!("wrong body: {other:?}"),
        }

        let stats = Response::Stats(StatsReply {
            request_id: 0,
            requests: 5,
            fw_cached: 2,
            fw_hits: 3,
            fw_misses: 2,
            store: Some(StoreStats {
                hits: 1,
                ..Default::default()
            }),
        });
        match decode_response(&encode_response(&stats, 7))
            .unwrap()
            .response
        {
            Response::Stats(r) => {
                assert_eq!(r.requests, 5);
                assert_eq!(r.store.unwrap().hits, 1);
                assert_eq!(r.request_id, 7);
            }
            other => panic!("wrong body: {other:?}"),
        }

        let health = Response::Health(HealthReply {
            request_id: 0,
            healthy: true,
            uptime_nanos: 123,
            requests: 9,
        });
        match decode_response(&encode_response(&health, 8))
            .unwrap()
            .response
        {
            Response::Health(r) => {
                assert!(r.healthy);
                assert_eq!((r.uptime_nanos, r.requests, r.request_id), (123, 9, 8));
            }
            other => panic!("wrong body: {other:?}"),
        }

        let metrics = Response::Metrics(MetricsReply {
            request_id: 0,
            text: "# TYPE cayman_x counter\ncayman_x 1\n".into(),
        });
        match decode_response(&encode_response(&metrics, 9))
            .unwrap()
            .response
        {
            Response::Metrics(r) => {
                assert!(r.text.contains("cayman_x 1"));
                assert_eq!(r.request_id, 9);
            }
            other => panic!("wrong body: {other:?}"),
        }

        match decode_response(&encode_response(&Response::Error("boom".into()), 3))
            .unwrap()
            .response
        {
            Response::Error(msg) => assert_eq!(msg, "boom"),
            other => panic!("wrong body: {other:?}"),
        }
    }

    #[test]
    fn responses_without_the_id_trailer_decode_as_id_zero() {
        // a pre-telemetry PONG frame: version, status, body tag — no trailer
        let mut e = Enc::new();
        e.u8(VERSION);
        e.u8(STATUS_OK);
        e.u8(BODY_PONG);
        let decoded = decode_response(&e.finish()).unwrap();
        assert!(matches!(decoded.response, Response::Pong));
        assert_eq!(decoded.request_id, 0, "missing trailer reads as id 0");
    }

    #[test]
    fn unknown_opcode_is_a_protocol_error() {
        let mut e = Enc::new();
        e.u8(VERSION);
        e.u8(99);
        assert!(matches!(
            decode_request(&e.finish()),
            Err(WireError::Protocol(_))
        ));
    }
}
