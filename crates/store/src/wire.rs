//! Length-prefixed framing and the request/response wire protocol spoken
//! between [`crate::server`] and [`crate::client`].
//!
//! ## Framing
//!
//! Every message is one frame: a `u32` little-endian payload length, then
//! the payload. Frames above [`MAX_FRAME`] bytes are rejected (a corrupt or
//! hostile peer must not drive allocations). A clean EOF *between* frames
//! is a normal connection close.
//!
//! ## Payloads
//!
//! Requests open with `version u8, opcode u8`:
//!
//! | opcode | body |
//! |---|---|
//! | `1` SELECT   | module text (length-prefixed UTF-8, the `ir::parse` surface) |
//! | `2` STATS    | empty |
//! | `3` PING     | empty |
//! | `4` SHUTDOWN | empty |
//!
//! Responses open with `version u8, status u8` (`0` ok / `1` error). An
//! error body is a length-prefixed message. A SELECT ok body carries
//! `framework_reused u8`, per-request counters (`model_evals`,
//! `cache_hits`, `cache_misses`, `disk_hits` as `u64`s) and the encoded
//! Pareto front ([`crate::codec::encode_front`] — bit-exact `f64`s). A
//! STATS ok body carries the server's lifetime counters and, when a store
//! is attached, its [`StoreStats`].

use crate::codec::{self, Dec, DecodeError, Enc, VERSION};
use crate::disk::StoreStats;
use cayman_select::Solution;
use std::fmt;
use std::io::{self, Read, Write};

/// Hard cap on a frame payload (64 MiB — far above any real module or
/// front, far below an allocation bomb).
pub const MAX_FRAME: u32 = 64 << 20;

/// Request opcodes.
pub mod opcode {
    /// Analyse + select a textual IR module.
    pub const SELECT: u8 = 1;
    /// Server + store counter snapshot.
    pub const STATS: u8 = 2;
    /// Liveness probe.
    pub const PING: u8 = 3;
    /// Orderly server shutdown.
    pub const SHUTDOWN: u8 = 4;
}

/// Anything that can go wrong on the wire.
#[derive(Debug)]
pub enum WireError {
    /// Socket-level failure.
    Io(io::Error),
    /// Payload failed to decode.
    Decode(DecodeError),
    /// Peer announced a frame above [`MAX_FRAME`].
    FrameTooLarge(u32),
    /// Structurally valid bytes that violate the protocol.
    Protocol(&'static str),
    /// The server answered with an error message.
    Server(String),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "io: {e}"),
            WireError::Decode(e) => write!(f, "decode: {e}"),
            WireError::FrameTooLarge(n) => write!(f, "frame of {n} bytes exceeds cap"),
            WireError::Protocol(what) => write!(f, "protocol violation: {what}"),
            WireError::Server(msg) => write!(f, "server error: {msg}"),
        }
    }
}

impl From<io::Error> for WireError {
    fn from(e: io::Error) -> Self {
        WireError::Io(e)
    }
}

impl From<DecodeError> for WireError {
    fn from(e: DecodeError) -> Self {
        WireError::Decode(e)
    }
}

/// Writes one frame (length prefix + payload) and flushes.
///
/// # Errors
///
/// Propagates socket write failures.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    let len = payload.len() as u32;
    w.write_all(&len.to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one frame. `Ok(None)` is a clean EOF before any length byte — the
/// peer closed between frames.
///
/// # Errors
///
/// Fails on socket errors, mid-frame EOF, or an oversized announcement.
pub fn read_frame(r: &mut impl Read) -> Result<Option<Vec<u8>>, WireError> {
    let mut len = [0u8; 4];
    match r.read_exact(&mut len) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e.into()),
    }
    let len = u32::from_le_bytes(len);
    if len > MAX_FRAME {
        return Err(WireError::FrameTooLarge(len));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

/// One client request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Analyse + select this textual IR module.
    Select {
        /// The module in the `ir::parse` surface syntax.
        module_text: String,
    },
    /// Counter snapshot.
    Stats,
    /// Liveness probe.
    Ping,
    /// Orderly shutdown.
    Shutdown,
}

/// Per-SELECT reply: the front plus enough counters to tell a cold request
/// from a memory-warm or disk-warm one.
#[derive(Debug, Clone)]
pub struct SelectReply {
    /// The selection Pareto front, bit-exact.
    pub front: Vec<Solution>,
    /// Whether the server reused an already-analysed `Framework` for this
    /// module text (memory-warm).
    pub framework_reused: bool,
    /// `accel(v, R)` model evaluations this request ran (0 ⇒ fully warm).
    pub model_evals: u64,
    /// Design-cache hits during this request's selection.
    pub cache_hits: u64,
    /// Design-cache memory-level misses during this request's selection.
    pub cache_misses: u64,
    /// Misses answered by the disk store during this request.
    pub disk_hits: u64,
}

/// STATS reply: server lifetime counters plus the store's, when attached.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StatsReply {
    /// Total requests served (all opcodes).
    pub requests: u64,
    /// Analysed frameworks currently cached.
    pub fw_cached: u64,
    /// SELECTs that reused a cached framework.
    pub fw_hits: u64,
    /// SELECTs that had to analyse from scratch.
    pub fw_misses: u64,
    /// Disk-store counters, when a store is attached.
    pub store: Option<StoreStats>,
}

/// One server response.
#[derive(Debug, Clone)]
pub enum Response {
    /// SELECT succeeded.
    Select(SelectReply),
    /// STATS succeeded.
    Stats(StatsReply),
    /// PING succeeded.
    Pong,
    /// SHUTDOWN acknowledged (the server exits after sending this).
    ShuttingDown,
    /// The request failed (parse error, analysis error, bad opcode…).
    Error(String),
}

const STATUS_OK: u8 = 0;
const STATUS_ERR: u8 = 1;

// ok-body tags, so responses are self-describing independent of request
// pipelining
const BODY_SELECT: u8 = 1;
const BODY_STATS: u8 = 2;
const BODY_PONG: u8 = 3;
const BODY_SHUTDOWN: u8 = 4;

/// Serializes a request payload.
pub fn encode_request(req: &Request) -> Vec<u8> {
    let mut e = Enc::new();
    e.u8(VERSION);
    match req {
        Request::Select { module_text } => {
            e.u8(opcode::SELECT);
            e.blob(module_text.as_bytes());
        }
        Request::Stats => e.u8(opcode::STATS),
        Request::Ping => e.u8(opcode::PING),
        Request::Shutdown => e.u8(opcode::SHUTDOWN),
    }
    e.finish()
}

/// Parses a request payload.
///
/// # Errors
///
/// Fails on version skew, unknown opcodes, or malformed bodies.
pub fn decode_request(payload: &[u8]) -> Result<Request, WireError> {
    let mut d = Dec::new(payload);
    let version = d.u8()?;
    if version != VERSION {
        return Err(WireError::Protocol("request version mismatch"));
    }
    let req = match d.u8()? {
        opcode::SELECT => Request::Select {
            module_text: String::from_utf8(d.blob()?.to_vec())
                .map_err(|_| WireError::Protocol("module text is not UTF-8"))?,
        },
        opcode::STATS => Request::Stats,
        opcode::PING => Request::Ping,
        opcode::SHUTDOWN => Request::Shutdown,
        _ => return Err(WireError::Protocol("unknown opcode")),
    };
    if d.remaining() != 0 {
        return Err(WireError::Protocol("trailing bytes after request"));
    }
    Ok(req)
}

fn encode_store_stats(e: &mut Enc, stats: &StoreStats) {
    e.u64(stats.hits);
    e.u64(stats.misses);
    e.u64(stats.corrupt);
    e.u64(stats.version_skew);
    e.u64(stats.key_mismatches);
    e.u64(stats.writes);
    e.u64(stats.evictions);
    e.u64(stats.evicted_bytes);
}

fn decode_store_stats(d: &mut Dec) -> Result<StoreStats, DecodeError> {
    Ok(StoreStats {
        hits: d.u64()?,
        misses: d.u64()?,
        corrupt: d.u64()?,
        version_skew: d.u64()?,
        key_mismatches: d.u64()?,
        writes: d.u64()?,
        evictions: d.u64()?,
        evicted_bytes: d.u64()?,
    })
}

/// Serializes a response payload.
pub fn encode_response(resp: &Response) -> Vec<u8> {
    let mut e = Enc::new();
    e.u8(VERSION);
    match resp {
        Response::Error(msg) => {
            e.u8(STATUS_ERR);
            e.blob(msg.as_bytes());
        }
        Response::Select(r) => {
            e.u8(STATUS_OK);
            e.u8(BODY_SELECT);
            e.u8(u8::from(r.framework_reused));
            e.u64(r.model_evals);
            e.u64(r.cache_hits);
            e.u64(r.cache_misses);
            e.u64(r.disk_hits);
            codec::encode_front(&mut e, &r.front);
        }
        Response::Stats(r) => {
            e.u8(STATUS_OK);
            e.u8(BODY_STATS);
            e.u64(r.requests);
            e.u64(r.fw_cached);
            e.u64(r.fw_hits);
            e.u64(r.fw_misses);
            match &r.store {
                Some(s) => {
                    e.u8(1);
                    encode_store_stats(&mut e, s);
                }
                None => e.u8(0),
            }
        }
        Response::Pong => {
            e.u8(STATUS_OK);
            e.u8(BODY_PONG);
        }
        Response::ShuttingDown => {
            e.u8(STATUS_OK);
            e.u8(BODY_SHUTDOWN);
        }
    }
    e.finish()
}

/// Parses a response payload.
///
/// # Errors
///
/// Fails on version skew or malformed bodies. A server-reported error
/// becomes [`WireError::Server`] at the call site, not here — it decodes
/// into [`Response::Error`].
pub fn decode_response(payload: &[u8]) -> Result<Response, WireError> {
    let mut d = Dec::new(payload);
    let version = d.u8()?;
    if version != VERSION {
        return Err(WireError::Protocol("response version mismatch"));
    }
    match d.u8()? {
        STATUS_ERR => Ok(Response::Error(
            String::from_utf8_lossy(d.blob()?).into_owned(),
        )),
        STATUS_OK => match d.u8()? {
            BODY_SELECT => {
                let framework_reused = d.u8()? != 0;
                let model_evals = d.u64()?;
                let cache_hits = d.u64()?;
                let cache_misses = d.u64()?;
                let disk_hits = d.u64()?;
                let front = codec::decode_front(&mut d)?;
                Ok(Response::Select(SelectReply {
                    front,
                    framework_reused,
                    model_evals,
                    cache_hits,
                    cache_misses,
                    disk_hits,
                }))
            }
            BODY_STATS => {
                let requests = d.u64()?;
                let fw_cached = d.u64()?;
                let fw_hits = d.u64()?;
                let fw_misses = d.u64()?;
                let store = if d.u8()? != 0 {
                    Some(decode_store_stats(&mut d)?)
                } else {
                    None
                };
                Ok(Response::Stats(StatsReply {
                    requests,
                    fw_cached,
                    fw_hits,
                    fw_misses,
                    store,
                }))
            }
            BODY_PONG => Ok(Response::Pong),
            BODY_SHUTDOWN => Ok(Response::ShuttingDown),
            _ => Err(WireError::Protocol("unknown response body tag")),
        },
        _ => Err(WireError::Protocol("unknown response status")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_roundtrip_and_eof_is_clean() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut r = buf.as_slice();
        assert_eq!(read_frame(&mut r).unwrap().as_deref(), Some(&b"hello"[..]));
        assert_eq!(read_frame(&mut r).unwrap().as_deref(), Some(&b""[..]));
        assert!(read_frame(&mut r).unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn oversized_frame_is_rejected_without_allocating() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(MAX_FRAME + 1).to_le_bytes());
        assert!(matches!(
            read_frame(&mut buf.as_slice()),
            Err(WireError::FrameTooLarge(_))
        ));
    }

    #[test]
    fn mid_frame_eof_is_an_error() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"truncated-frame").unwrap();
        buf.truncate(7);
        assert!(matches!(
            read_frame(&mut buf.as_slice()),
            Err(WireError::Io(_))
        ));
    }

    #[test]
    fn requests_roundtrip() {
        for req in [
            Request::Select {
                module_text: "func @f() { ... }".into(),
            },
            Request::Stats,
            Request::Ping,
            Request::Shutdown,
        ] {
            assert_eq!(decode_request(&encode_request(&req)).unwrap(), req);
        }
    }

    #[test]
    fn responses_roundtrip() {
        let reply = Response::Select(SelectReply {
            front: vec![Solution::default()],
            framework_reused: true,
            model_evals: 7,
            cache_hits: 9,
            cache_misses: 3,
            disk_hits: 2,
        });
        match decode_response(&encode_response(&reply)).unwrap() {
            Response::Select(r) => {
                assert!(r.framework_reused);
                assert_eq!((r.model_evals, r.cache_hits, r.cache_misses), (7, 9, 3));
                assert_eq!(r.disk_hits, 2);
                assert_eq!(r.front.len(), 1);
            }
            other => panic!("wrong body: {other:?}"),
        }

        let stats = Response::Stats(StatsReply {
            requests: 5,
            fw_cached: 2,
            fw_hits: 3,
            fw_misses: 2,
            store: Some(StoreStats {
                hits: 1,
                ..Default::default()
            }),
        });
        match decode_response(&encode_response(&stats)).unwrap() {
            Response::Stats(r) => {
                assert_eq!(r.requests, 5);
                assert_eq!(r.store.unwrap().hits, 1);
            }
            other => panic!("wrong body: {other:?}"),
        }

        match decode_response(&encode_response(&Response::Error("boom".into()))).unwrap() {
            Response::Error(msg) => assert_eq!(msg, "boom"),
            other => panic!("wrong body: {other:?}"),
        }
    }

    #[test]
    fn unknown_opcode_is_a_protocol_error() {
        let mut e = Enc::new();
        e.u8(VERSION);
        e.u8(99);
        assert!(matches!(
            decode_request(&e.finish()),
            Err(WireError::Protocol(_))
        ));
    }
}
