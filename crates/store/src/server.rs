//! The long-running batch analyse/select server (`caymand`).
//!
//! One process owns one shared state: a bounded LRU map of analysed
//! [`Framework`]s keyed by the content hash of the submitted module text,
//! plus (optionally) one shared [`DiskStore`] backing every framework's
//! design cache. Concurrent connections each get a thread, but identical
//! module texts batch onto the *same* warm `Arc<Framework>` — selection is
//! `&self` and the design cache is thread-safe, so N clients asking for the
//! same kernel cost one analysis and one model warm-up, and *different*
//! kernels still share model results through the store.
//!
//! Determinism: the served front is produced by exactly the same
//! `Framework::select` the in-process tools run, so a served front is
//! bit-identical to a locally computed one (asserted end-to-end by
//! `serversmoke` in ci.sh).

use crate::disk::DiskStore;
use crate::wire::{self, Request, Response, SelectReply, StatsReply, WireError};
use cayman::{CaymanError, Framework, SelectOptions};
use cayman_select::DesignStoreBackend;
use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// Where a server listens (and a client connects).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Endpoint {
    /// A Unix-domain socket path.
    Unix(PathBuf),
    /// A TCP address (`host:port`; port 0 binds an ephemeral port, resolved
    /// in [`ServerHandle::endpoint`]).
    Tcp(String),
}

impl std::fmt::Display for Endpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Endpoint::Unix(p) => write!(f, "unix:{}", p.display()),
            Endpoint::Tcp(a) => write!(f, "tcp:{a}"),
        }
    }
}

impl Endpoint {
    /// Connects a client stream to this endpoint.
    ///
    /// # Errors
    ///
    /// Propagates connection failures.
    pub fn connect(&self) -> io::Result<Stream> {
        Ok(match self {
            Endpoint::Unix(path) => Stream::Unix(UnixStream::connect(path)?),
            Endpoint::Tcp(addr) => Stream::Tcp(TcpStream::connect(addr.as_str())?),
        })
    }
}

/// A connected socket of either family.
#[derive(Debug)]
pub enum Stream {
    /// Unix-domain connection.
    Unix(UnixStream),
    /// TCP connection.
    Tcp(TcpStream),
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Stream::Unix(s) => s.read(buf),
            Stream::Tcp(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Stream::Unix(s) => s.write(buf),
            Stream::Tcp(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Stream::Unix(s) => s.flush(),
            Stream::Tcp(s) => s.flush(),
        }
    }
}

enum Listener {
    Unix(UnixListener),
    Tcp(TcpListener),
}

impl Listener {
    fn accept(&self) -> io::Result<Stream> {
        Ok(match self {
            Listener::Unix(l) => Stream::Unix(l.accept()?.0),
            Listener::Tcp(l) => Stream::Tcp(l.accept()?.0),
        })
    }
}

/// Server tunables.
#[derive(Debug, Clone)]
pub struct ServerOptions {
    /// Back every framework's design cache with this store directory.
    pub store_dir: Option<PathBuf>,
    /// Selection options used for every SELECT (fronts are bit-identical
    /// for every thread count, so this only affects latency).
    pub select: SelectOptions,
    /// At most this many analysed frameworks are kept warm (LRU).
    pub max_frameworks: usize,
}

impl Default for ServerOptions {
    fn default() -> Self {
        ServerOptions {
            store_dir: None,
            select: SelectOptions::default(),
            max_frameworks: 64,
        }
    }
}

/// The warm-framework LRU: module-text hash → analysed framework.
struct FwCache {
    map: HashMap<u64, (Arc<Framework>, u64)>,
    tick: u64,
}

struct Shared {
    endpoint: Endpoint,
    store: Option<Arc<DiskStore>>,
    select: SelectOptions,
    max_frameworks: usize,
    frameworks: Mutex<FwCache>,
    requests: AtomicU64,
    fw_hits: AtomicU64,
    fw_misses: AtomicU64,
    shutdown: AtomicBool,
}

impl Shared {
    /// The warm framework for `text`, analysing (outside any lock) on a
    /// miss. The bool is true when an already-analysed framework was
    /// reused.
    fn framework_for(&self, text: &str) -> Result<(Arc<Framework>, bool), CaymanError> {
        let fp = crate::codec::fnv1a(text.as_bytes());
        {
            let mut cache = self.frameworks.lock().expect("framework cache poisoned");
            cache.tick += 1;
            let tick = cache.tick;
            if let Some((fw, used)) = cache.map.get_mut(&fp) {
                *used = tick;
                self.fw_hits.fetch_add(1, Ordering::Relaxed);
                cayman_obs::counter("server.fw.hit", 1);
                return Ok((Arc::clone(fw), true));
            }
        }
        self.fw_misses.fetch_add(1, Ordering::Relaxed);
        cayman_obs::counter("server.fw.miss", 1);
        let span = cayman_obs::timed("server.analyse");
        let mut fw = Framework::from_text(text)?;
        if let Some(store) = &self.store {
            fw.set_design_store(Arc::clone(store) as Arc<dyn DesignStoreBackend>);
        }
        span.finish();
        let fw = Arc::new(fw);
        let mut cache = self.frameworks.lock().expect("framework cache poisoned");
        cache.tick += 1;
        let tick = cache.tick;
        // a racing connection may have analysed the same text meanwhile;
        // keep whichever landed first so everyone shares one warm cache
        let entry = cache
            .map
            .entry(fp)
            .or_insert_with(|| (Arc::clone(&fw), tick));
        entry.1 = tick;
        let fw = Arc::clone(&entry.0);
        if cache.map.len() > self.max_frameworks {
            if let Some((&evict, _)) = cache.map.iter().min_by_key(|(_, (_, used))| *used) {
                cache.map.remove(&evict);
                cayman_obs::counter("server.fw.evict", 1);
            }
        }
        Ok((fw, false))
    }

    fn handle(&self, req: Request) -> (Response, bool) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        match req {
            Request::Select { module_text } => {
                let span = cayman_obs::timed("server.select");
                let resp = match self.framework_for(&module_text) {
                    Err(e) => Response::Error(e.to_string()),
                    Ok((fw, framework_reused)) => {
                        let disk_before = fw.cache_stats().disk_hits;
                        let res = fw.select(&self.select);
                        let disk_after = fw.cache_stats().disk_hits;
                        if res.stats.configs_evaluated == 0 {
                            cayman_obs::counter("server.select.warm", 1);
                        } else {
                            cayman_obs::counter("server.select.cold", 1);
                        }
                        Response::Select(SelectReply {
                            front: res.pareto,
                            framework_reused,
                            model_evals: res.stats.configs_evaluated as u64,
                            cache_hits: res.stats.cache_hits,
                            cache_misses: res.stats.cache_misses,
                            disk_hits: disk_after - disk_before,
                        })
                    }
                };
                span.finish();
                (resp, false)
            }
            Request::Stats => (
                Response::Stats(StatsReply {
                    requests: self.requests.load(Ordering::Relaxed),
                    fw_cached: self
                        .frameworks
                        .lock()
                        .expect("framework cache poisoned")
                        .map
                        .len() as u64,
                    fw_hits: self.fw_hits.load(Ordering::Relaxed),
                    fw_misses: self.fw_misses.load(Ordering::Relaxed),
                    store: self.store.as_ref().map(|s| s.stats()),
                }),
                false,
            ),
            Request::Ping => (Response::Pong, false),
            Request::Shutdown => (Response::ShuttingDown, true),
        }
    }
}

fn handle_conn(shared: &Shared, mut stream: Stream) {
    loop {
        if shared.shutdown.load(Ordering::Relaxed) {
            return;
        }
        let payload = match wire::read_frame(&mut stream) {
            Ok(Some(p)) => p,
            Ok(None) | Err(_) => return, // clean close or broken peer
        };
        let (resp, shutdown) = match wire::decode_request(&payload) {
            Ok(req) => shared.handle(req),
            // a malformed request poisons the framing; answer and close
            Err(e) => {
                let _ = wire::write_frame(
                    &mut stream,
                    &wire::encode_response(&Response::Error(e.to_string())),
                );
                return;
            }
        };
        if wire::write_frame(&mut stream, &wire::encode_response(&resp)).is_err() {
            return;
        }
        if shutdown {
            shared.shutdown.store(true, Ordering::Relaxed);
            // unblock the acceptor so it observes the flag
            let _ = shared.endpoint.connect();
            return;
        }
    }
}

/// A running server: its resolved endpoint plus the acceptor thread.
pub struct ServerHandle {
    endpoint: Endpoint,
    shared: Arc<Shared>,
    acceptor: JoinHandle<()>,
}

impl ServerHandle {
    /// Where the server actually listens (TCP port 0 resolved).
    pub fn endpoint(&self) -> &Endpoint {
        &self.endpoint
    }

    /// The shared disk store, when one is attached.
    pub fn store(&self) -> Option<&Arc<DiskStore>> {
        self.shared.store.as_ref()
    }

    /// Blocks until the server shuts down (a SHUTDOWN request).
    pub fn wait(self) {
        let _ = self.acceptor.join();
    }

    /// Initiates shutdown and waits for the acceptor to exit.
    pub fn stop(self) {
        self.shared.shutdown.store(true, Ordering::Relaxed);
        let _ = self.endpoint.connect();
        let _ = self.acceptor.join();
    }
}

/// Binds `endpoint` and serves until shutdown. Returns immediately; the
/// accept loop runs on its own thread, one more thread per connection.
///
/// # Errors
///
/// Fails when the socket cannot be bound or the store directory cannot be
/// opened.
pub fn serve(endpoint: Endpoint, opts: ServerOptions) -> Result<ServerHandle, WireError> {
    let store = match &opts.store_dir {
        Some(dir) => Some(Arc::new(DiskStore::open(dir)?)),
        None => None,
    };
    let (listener, endpoint) = match endpoint {
        Endpoint::Unix(path) => {
            // a stale socket file from a crashed server blocks bind
            let _ = std::fs::remove_file(&path);
            (
                Listener::Unix(UnixListener::bind(&path)?),
                Endpoint::Unix(path),
            )
        }
        Endpoint::Tcp(addr) => {
            let l = TcpListener::bind(addr.as_str())?;
            let resolved = l.local_addr()?.to_string();
            (Listener::Tcp(l), Endpoint::Tcp(resolved))
        }
    };
    let shared = Arc::new(Shared {
        endpoint: endpoint.clone(),
        store,
        select: opts.select,
        max_frameworks: opts.max_frameworks.max(1),
        frameworks: Mutex::new(FwCache {
            map: HashMap::new(),
            tick: 0,
        }),
        requests: AtomicU64::new(0),
        fw_hits: AtomicU64::new(0),
        fw_misses: AtomicU64::new(0),
        shutdown: AtomicBool::new(false),
    });
    let acceptor = {
        let shared = Arc::clone(&shared);
        std::thread::spawn(move || {
            loop {
                if shared.shutdown.load(Ordering::Relaxed) {
                    break;
                }
                let Ok(stream) = listener.accept() else {
                    break;
                };
                if shared.shutdown.load(Ordering::Relaxed) {
                    break;
                }
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || handle_conn(&shared, stream));
            }
            if let Endpoint::Unix(path) = &shared.endpoint {
                let _ = std::fs::remove_file(path);
            }
        })
    };
    Ok(ServerHandle {
        endpoint,
        shared,
        acceptor,
    })
}
