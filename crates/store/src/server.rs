//! The long-running batch analyse/select server (`caymand`).
//!
//! One process owns one shared state: a bounded LRU map of analysed
//! [`Framework`]s keyed by the content hash of the submitted module text,
//! plus (optionally) one shared [`DiskStore`] backing every framework's
//! design cache. Concurrent connections each get a thread, but identical
//! module texts batch onto the *same* warm `Arc<Framework>` — selection is
//! `&self` and the design cache is thread-safe, so N clients asking for the
//! same kernel cost one analysis and one model warm-up, and *different*
//! kernels still share model results through the store.
//!
//! Determinism: the served front is produced by exactly the same
//! `Framework::select` the in-process tools run, so a served front is
//! bit-identical to a locally computed one (asserted end-to-end by
//! `serversmoke` in ci.sh).
//!
//! ## Request-scoped telemetry
//!
//! Every frame the server reads is assigned a **request id** (a process
//! lifetime sequence starting at 1) that travels back to the client as the
//! response-frame trailer, tags the request's span tree
//! (`server.req` → `server.req.{decode,warm,select,encode}`), and names
//! the request in the **slow-request log** (threshold
//! `CAYMAN_SLOW_REQ_MS`; lines go to stderr and a bounded in-process ring
//! read by [`ServerHandle::slow_log`]). Each phase also records into an
//! always-on latency histogram (`req.decode.nanos`, `req.warm.nanos`,
//! `req.select.nanos`, `req.encode.nanos`, `req.total.nanos` in
//! `cayman_obs::registry`), and the whole registry plus server, design
//! cache and store counters is served as a Prometheus-style text
//! exposition by `Request::Metrics` (and periodically dumped to
//! [`ServerOptions::metrics_file`] for scrape-less setups).

use crate::disk::DiskStore;
use crate::wire::{
    self, HealthReply, MetricsReply, Request, Response, SelectReply, StatsReply, WireError,
};
use cayman::{CaymanError, Framework, SelectOptions};
use cayman_obs::hist::Histogram;
use cayman_select::{CacheStats, DesignStoreBackend};
use std::collections::{HashMap, VecDeque};
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Environment variable naming the slow-request threshold in milliseconds
/// (`0` logs every request; unset disables the log).
pub const SLOW_REQ_MS_ENV: &str = "CAYMAN_SLOW_REQ_MS";

/// Environment variable naming the per-connection read/idle timeout in
/// milliseconds (unset means connections may idle forever).
pub const REQ_TIMEOUT_MS_ENV: &str = "CAYMAN_REQ_TIMEOUT_MS";

/// Environment variable naming the metrics-file dump interval in
/// milliseconds (default 2000).
pub const METRICS_INTERVAL_MS_ENV: &str = "CAYMAN_METRICS_INTERVAL_MS";

/// Most recent slow-request lines kept for [`ServerHandle::slow_log`].
const SLOW_LOG_CAP: usize = 64;

/// Where a server listens (and a client connects).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Endpoint {
    /// A Unix-domain socket path.
    Unix(PathBuf),
    /// A TCP address (`host:port`; port 0 binds an ephemeral port, resolved
    /// in [`ServerHandle::endpoint`]).
    Tcp(String),
}

impl std::fmt::Display for Endpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Endpoint::Unix(p) => write!(f, "unix:{}", p.display()),
            Endpoint::Tcp(a) => write!(f, "tcp:{a}"),
        }
    }
}

impl Endpoint {
    /// Connects a client stream to this endpoint.
    ///
    /// # Errors
    ///
    /// Propagates connection failures.
    pub fn connect(&self) -> io::Result<Stream> {
        Ok(match self {
            Endpoint::Unix(path) => Stream::Unix(UnixStream::connect(path)?),
            Endpoint::Tcp(addr) => Stream::Tcp(TcpStream::connect(addr.as_str())?),
        })
    }
}

/// A connected socket of either family.
#[derive(Debug)]
pub enum Stream {
    /// Unix-domain connection.
    Unix(UnixStream),
    /// TCP connection.
    Tcp(TcpStream),
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Stream::Unix(s) => s.read(buf),
            Stream::Tcp(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Stream::Unix(s) => s.write(buf),
            Stream::Tcp(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Stream::Unix(s) => s.flush(),
            Stream::Tcp(s) => s.flush(),
        }
    }
}

impl Stream {
    /// Applies a read timeout (both socket families support one). `None`
    /// blocks forever.
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        match self {
            Stream::Unix(s) => s.set_read_timeout(timeout),
            Stream::Tcp(s) => s.set_read_timeout(timeout),
        }
    }
}

enum Listener {
    Unix(UnixListener),
    Tcp(TcpListener),
}

impl Listener {
    fn accept(&self) -> io::Result<Stream> {
        Ok(match self {
            Listener::Unix(l) => Stream::Unix(l.accept()?.0),
            Listener::Tcp(l) => Stream::Tcp(l.accept()?.0),
        })
    }
}

/// Server tunables.
#[derive(Debug, Clone)]
pub struct ServerOptions {
    /// Back every framework's design cache with this store directory.
    pub store_dir: Option<PathBuf>,
    /// Selection options used for every SELECT (fronts are bit-identical
    /// for every thread count, so this only affects latency).
    pub select: SelectOptions,
    /// At most this many analysed frameworks are kept warm (LRU).
    pub max_frameworks: usize,
    /// Requests whose total handling time is at least this many
    /// milliseconds are written to the slow-request log (`0` logs every
    /// request, `None` disables). Default: [`SLOW_REQ_MS_ENV`].
    pub slow_req_ms: Option<u64>,
    /// Per-connection read/idle timeout in milliseconds: a connection that
    /// sends no frame for this long is closed (and counted under
    /// `server.timeout`) instead of pinning its thread forever. Default:
    /// [`REQ_TIMEOUT_MS_ENV`].
    pub req_timeout_ms: Option<u64>,
    /// Periodically dump the metrics exposition to this file (atomic
    /// tmp+rename), for scrape-less setups (`caymand --metrics-file`).
    pub metrics_file: Option<PathBuf>,
    /// Dump interval for [`ServerOptions::metrics_file`] in milliseconds.
    /// Default: [`METRICS_INTERVAL_MS_ENV`] or 2000.
    pub metrics_interval_ms: u64,
}

fn env_ms(var: &str) -> Option<u64> {
    std::env::var(var).ok().and_then(|v| v.parse().ok())
}

impl Default for ServerOptions {
    fn default() -> Self {
        ServerOptions {
            store_dir: None,
            select: SelectOptions::default(),
            max_frameworks: 64,
            slow_req_ms: env_ms(SLOW_REQ_MS_ENV),
            req_timeout_ms: env_ms(REQ_TIMEOUT_MS_ENV),
            metrics_file: None,
            metrics_interval_ms: env_ms(METRICS_INTERVAL_MS_ENV).unwrap_or(2000),
        }
    }
}

/// The warm-framework LRU: module-text hash → analysed framework.
struct FwCache {
    map: HashMap<u64, (Arc<Framework>, u64)>,
    tick: u64,
}

/// Always-on per-phase request histogram handles. The handles point into
/// the process-global `cayman_obs::registry`, so two servers in one
/// process share distributions — counts only ever grow.
struct PhaseHists {
    decode: &'static Histogram,
    warm: &'static Histogram,
    select: &'static Histogram,
    encode: &'static Histogram,
    total: &'static Histogram,
}

impl PhaseHists {
    fn register() -> PhaseHists {
        PhaseHists {
            decode: cayman_obs::registry::hist("req.decode.nanos"),
            warm: cayman_obs::registry::hist("req.warm.nanos"),
            select: cayman_obs::registry::hist("req.select.nanos"),
            encode: cayman_obs::registry::hist("req.encode.nanos"),
            total: cayman_obs::registry::hist("req.total.nanos"),
        }
    }
}

/// Phase timings of one handled request, for the slow-request log.
#[derive(Default, Clone, Copy)]
struct Phases {
    op: &'static str,
    decode_nanos: u64,
    warm_nanos: u64,
    select_nanos: u64,
    encode_nanos: u64,
    framework_reused: bool,
}

struct Shared {
    endpoint: Endpoint,
    store: Option<Arc<DiskStore>>,
    select: SelectOptions,
    max_frameworks: usize,
    slow_req_ms: Option<u64>,
    req_timeout: Option<Duration>,
    started: Instant,
    frameworks: Mutex<FwCache>,
    requests: AtomicU64,
    fw_hits: AtomicU64,
    fw_misses: AtomicU64,
    timeouts: AtomicU64,
    slow: AtomicU64,
    next_request_id: AtomicU64,
    slow_lines: Mutex<VecDeque<String>>,
    hists: PhaseHists,
    shutdown: AtomicBool,
}

impl Shared {
    /// The warm framework for `text`, analysing (outside any lock) on a
    /// miss. The bool is true when an already-analysed framework was
    /// reused.
    fn framework_for(&self, text: &str) -> Result<(Arc<Framework>, bool), CaymanError> {
        let fp = crate::codec::fnv1a(text.as_bytes());
        {
            let mut cache = self.frameworks.lock().expect("framework cache poisoned");
            cache.tick += 1;
            let tick = cache.tick;
            if let Some((fw, used)) = cache.map.get_mut(&fp) {
                *used = tick;
                self.fw_hits.fetch_add(1, Ordering::Relaxed);
                cayman_obs::counter("server.fw.hit", 1);
                return Ok((Arc::clone(fw), true));
            }
        }
        self.fw_misses.fetch_add(1, Ordering::Relaxed);
        cayman_obs::counter("server.fw.miss", 1);
        let span = cayman_obs::timed("server.analyse");
        let mut fw = Framework::from_text(text)?;
        if let Some(store) = &self.store {
            fw.set_design_store(Arc::clone(store) as Arc<dyn DesignStoreBackend>);
        }
        span.finish();
        let fw = Arc::new(fw);
        let mut cache = self.frameworks.lock().expect("framework cache poisoned");
        cache.tick += 1;
        let tick = cache.tick;
        // a racing connection may have analysed the same text meanwhile;
        // keep whichever landed first so everyone shares one warm cache
        let entry = cache
            .map
            .entry(fp)
            .or_insert_with(|| (Arc::clone(&fw), tick));
        entry.1 = tick;
        let fw = Arc::clone(&entry.0);
        if cache.map.len() > self.max_frameworks {
            if let Some((&evict, _)) = cache.map.iter().min_by_key(|(_, (_, used))| *used) {
                cache.map.remove(&evict);
                cayman_obs::counter("server.fw.evict", 1);
            }
        }
        Ok((fw, false))
    }

    /// Handles one decoded request. Returns the response, whether the
    /// server should shut down, and the phase timings recorded so far.
    fn handle(&self, req: Request, request_id: u64) -> (Response, bool, Phases) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        let mut phases = Phases::default();
        match req {
            Request::Select { module_text } => {
                phases.op = "select";
                let span = cayman_obs::timed("server.select");
                let resp = {
                    let warm_t = Instant::now();
                    let fw = self.framework_for(&module_text);
                    phases.warm_nanos = warm_t.elapsed().as_nanos() as u64;
                    self.hists.warm.record(phases.warm_nanos);
                    match fw {
                        Err(e) => Response::Error(e.to_string()),
                        Ok((fw, framework_reused)) => {
                            phases.framework_reused = framework_reused;
                            let select_t = Instant::now();
                            let disk_before = fw.cache_stats().disk_hits;
                            let res = fw.select(&self.select);
                            let disk_after = fw.cache_stats().disk_hits;
                            phases.select_nanos = select_t.elapsed().as_nanos() as u64;
                            self.hists.select.record(phases.select_nanos);
                            if res.stats.configs_evaluated == 0 {
                                cayman_obs::counter("server.select.warm", 1);
                            } else {
                                cayman_obs::counter("server.select.cold", 1);
                            }
                            Response::Select(SelectReply {
                                request_id,
                                front: res.pareto,
                                framework_reused,
                                model_evals: res.stats.configs_evaluated as u64,
                                cache_hits: res.stats.cache_hits,
                                cache_misses: res.stats.cache_misses,
                                disk_hits: disk_after - disk_before,
                            })
                        }
                    }
                };
                span.finish();
                (resp, false, phases)
            }
            Request::Stats => {
                phases.op = "stats";
                (
                    Response::Stats(StatsReply {
                        request_id,
                        requests: self.requests.load(Ordering::Relaxed),
                        fw_cached: self
                            .frameworks
                            .lock()
                            .expect("framework cache poisoned")
                            .map
                            .len() as u64,
                        fw_hits: self.fw_hits.load(Ordering::Relaxed),
                        fw_misses: self.fw_misses.load(Ordering::Relaxed),
                        store: self.store.as_ref().map(|s| s.stats()),
                    }),
                    false,
                    phases,
                )
            }
            Request::Ping => {
                phases.op = "ping";
                (Response::Pong, false, phases)
            }
            Request::Shutdown => {
                phases.op = "shutdown";
                (Response::ShuttingDown, true, phases)
            }
            Request::Health => {
                phases.op = "health";
                (
                    Response::Health(HealthReply {
                        request_id,
                        healthy: true,
                        uptime_nanos: self.started.elapsed().as_nanos() as u64,
                        requests: self.requests.load(Ordering::Relaxed),
                    }),
                    false,
                    phases,
                )
            }
            Request::Metrics => {
                phases.op = "metrics";
                (
                    Response::Metrics(MetricsReply {
                        request_id,
                        text: self.metrics_text(),
                    }),
                    false,
                    phases,
                )
            }
        }
    }

    /// Assembles the Prometheus-style exposition: the global metric
    /// registry (per-phase request histograms) plus server lifetime
    /// counters, the design-cache counters aggregated over every warm
    /// framework, and the store's counters when one is attached.
    fn metrics_text(&self) -> String {
        let mut snap = cayman_obs::registry::snapshot();
        snap.push_counter("server.requests", self.requests.load(Ordering::Relaxed));
        snap.push_counter("server.fw.hits", self.fw_hits.load(Ordering::Relaxed));
        snap.push_counter("server.fw.misses", self.fw_misses.load(Ordering::Relaxed));
        snap.push_counter("server.timeout", self.timeouts.load(Ordering::Relaxed));
        snap.push_counter("server.slow", self.slow.load(Ordering::Relaxed));
        snap.push_gauge(
            "server.uptime.seconds",
            self.started.elapsed().as_secs_f64(),
        );
        let cache = {
            let fws = self.frameworks.lock().expect("framework cache poisoned");
            snap.push_gauge("server.fw.cached", fws.map.len() as f64);
            let mut agg = CacheStats::default();
            for (fw, _) in fws.map.values() {
                agg.merge(&fw.cache_stats());
            }
            agg
        };
        for (name, value) in cache.counters() {
            snap.push_counter(name, value);
        }
        if let Some(store) = &self.store {
            let s = store.stats();
            snap.push_counter("store.hits", s.hits);
            snap.push_counter("store.misses", s.misses);
            snap.push_counter("store.corrupt", s.corrupt);
            snap.push_counter("store.version_skew", s.version_skew);
            snap.push_counter("store.key_mismatches", s.key_mismatches);
            snap.push_counter("store.writes", s.writes);
            snap.push_counter("store.evictions", s.evictions);
            snap.push_counter("store.evicted_bytes", s.evicted_bytes);
        }
        snap.to_prometheus()
    }

    /// Atomically dumps the exposition to `path` (tmp + rename, like the
    /// disk store's writes).
    fn dump_metrics(&self, path: &std::path::Path) {
        let text = self.metrics_text();
        let tmp = path.with_extension("tmp");
        if std::fs::write(&tmp, text).is_ok() {
            let _ = std::fs::rename(&tmp, path);
        }
    }

    /// Records a finished request into the total histogram and, when it
    /// crossed the slow threshold, the slow-request log.
    fn finish_request(&self, request_id: u64, phases: Phases, total_nanos: u64) {
        self.hists.total.record(total_nanos);
        let Some(threshold_ms) = self.slow_req_ms else {
            return;
        };
        if total_nanos < threshold_ms.saturating_mul(1_000_000) {
            return;
        }
        self.slow.fetch_add(1, Ordering::Relaxed);
        let line = format_slow_line(request_id, phases, total_nanos);
        eprintln!("{line}");
        cayman_obs::instant_with("server.req.slow", || {
            vec![
                ("id", cayman_obs::ArgValue::U64(request_id)),
                ("total_nanos", cayman_obs::ArgValue::U64(total_nanos)),
            ]
        });
        let mut lines = self.slow_lines.lock().expect("slow log poisoned");
        if lines.len() == SLOW_LOG_CAP {
            lines.pop_front();
        }
        lines.push_back(line);
    }
}

/// Renders one slow-request log line. The format is stable and
/// machine-splittable: space-separated `key=value` pairs opening with
/// `slow-req id=<request id>` — the same id the client received in the
/// response-frame trailer, so client- and server-side observations line
/// up.
fn format_slow_line(request_id: u64, phases: Phases, total_nanos: u64) -> String {
    format!(
        "slow-req id={} op={} total_us={} decode_us={} warm_us={} select_us={} encode_us={} \
         reused={}",
        request_id,
        if phases.op.is_empty() {
            "unknown"
        } else {
            phases.op
        },
        total_nanos / 1_000,
        phases.decode_nanos / 1_000,
        phases.warm_nanos / 1_000,
        phases.select_nanos / 1_000,
        phases.encode_nanos / 1_000,
        phases.framework_reused,
    )
}

fn handle_conn(shared: &Shared, mut stream: Stream) {
    if let Some(ms) = shared.req_timeout {
        // a stalled or vanished client must not pin this thread forever
        let _ = stream.set_read_timeout(Some(ms));
    }
    loop {
        if shared.shutdown.load(Ordering::Relaxed) {
            return;
        }
        let payload = match wire::read_frame(&mut stream) {
            Ok(Some(p)) => p,
            Ok(None) => return, // clean close
            Err(WireError::Io(e))
                if matches!(
                    e.kind(),
                    io::ErrorKind::TimedOut | io::ErrorKind::WouldBlock
                ) =>
            {
                shared.timeouts.fetch_add(1, Ordering::Relaxed);
                cayman_obs::counter("server.timeout", 1);
                return;
            }
            Err(_) => return, // broken peer
        };
        // request work starts once a full frame is in hand (blocking on
        // read_frame is client think-time, not server latency)
        let request_id = shared.next_request_id.fetch_add(1, Ordering::Relaxed) + 1;
        let total_t = Instant::now();
        let mut phases;
        let decode_t = Instant::now();
        let decoded = wire::decode_request(&payload);
        let decode_nanos = decode_t.elapsed().as_nanos() as u64;
        shared.hists.decode.record(decode_nanos);
        let (resp, shutdown) = match decoded {
            Ok(req) => {
                let _g = cayman_obs::span!("server.req", id = request_id);
                let (resp, shutdown, p) = shared.handle(req, request_id);
                phases = p;
                (resp, shutdown)
            }
            // a malformed request poisons the framing; answer and close
            Err(e) => {
                let _ = wire::write_frame(
                    &mut stream,
                    &wire::encode_response(&Response::Error(e.to_string()), request_id),
                );
                return;
            }
        };
        phases.decode_nanos = decode_nanos;
        let encode_t = Instant::now();
        let frame = wire::encode_response(&resp, request_id);
        phases.encode_nanos = encode_t.elapsed().as_nanos() as u64;
        shared.hists.encode.record(phases.encode_nanos);
        // record BEFORE writing: once a client sees the reply, a metrics
        // scrape is guaranteed to count the request (no in-flight gap)
        shared.finish_request(request_id, phases, total_t.elapsed().as_nanos() as u64);
        if wire::write_frame(&mut stream, &frame).is_err() {
            return;
        }
        if shutdown {
            shared.shutdown.store(true, Ordering::Relaxed);
            // unblock the acceptor so it observes the flag
            let _ = shared.endpoint.connect();
            return;
        }
    }
}

/// A running server: its resolved endpoint plus the acceptor thread.
pub struct ServerHandle {
    endpoint: Endpoint,
    shared: Arc<Shared>,
    acceptor: JoinHandle<()>,
    metrics_dumper: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// Where the server actually listens (TCP port 0 resolved).
    pub fn endpoint(&self) -> &Endpoint {
        &self.endpoint
    }

    /// The shared disk store, when one is attached.
    pub fn store(&self) -> Option<&Arc<DiskStore>> {
        self.shared.store.as_ref()
    }

    /// The current metrics exposition, exactly as `Request::Metrics`
    /// serves it.
    pub fn metrics_text(&self) -> String {
        self.shared.metrics_text()
    }

    /// The most recent slow-request log lines (oldest first, bounded).
    pub fn slow_log(&self) -> Vec<String> {
        self.shared
            .slow_lines
            .lock()
            .expect("slow log poisoned")
            .iter()
            .cloned()
            .collect()
    }

    /// Blocks until the server shuts down (a SHUTDOWN request).
    pub fn wait(self) {
        let _ = self.acceptor.join();
        if let Some(d) = self.metrics_dumper {
            let _ = d.join();
        }
    }

    /// Initiates shutdown and waits for the acceptor to exit.
    pub fn stop(self) {
        self.shared.shutdown.store(true, Ordering::Relaxed);
        let _ = self.endpoint.connect();
        let _ = self.acceptor.join();
        if let Some(d) = self.metrics_dumper {
            let _ = d.join();
        }
    }
}

/// Binds `endpoint` and serves until shutdown. Returns immediately; the
/// accept loop runs on its own thread, one more thread per connection.
///
/// # Errors
///
/// Fails when the socket cannot be bound or the store directory cannot be
/// opened.
pub fn serve(endpoint: Endpoint, opts: ServerOptions) -> Result<ServerHandle, WireError> {
    let store = match &opts.store_dir {
        Some(dir) => Some(Arc::new(DiskStore::open(dir)?)),
        None => None,
    };
    let (listener, endpoint) = match endpoint {
        Endpoint::Unix(path) => {
            // a stale socket file from a crashed server blocks bind
            let _ = std::fs::remove_file(&path);
            (
                Listener::Unix(UnixListener::bind(&path)?),
                Endpoint::Unix(path),
            )
        }
        Endpoint::Tcp(addr) => {
            let l = TcpListener::bind(addr.as_str())?;
            let resolved = l.local_addr()?.to_string();
            (Listener::Tcp(l), Endpoint::Tcp(resolved))
        }
    };
    let shared = Arc::new(Shared {
        endpoint: endpoint.clone(),
        store,
        select: opts.select,
        max_frameworks: opts.max_frameworks.max(1),
        slow_req_ms: opts.slow_req_ms,
        req_timeout: opts.req_timeout_ms.map(Duration::from_millis),
        started: Instant::now(),
        frameworks: Mutex::new(FwCache {
            map: HashMap::new(),
            tick: 0,
        }),
        requests: AtomicU64::new(0),
        fw_hits: AtomicU64::new(0),
        fw_misses: AtomicU64::new(0),
        timeouts: AtomicU64::new(0),
        slow: AtomicU64::new(0),
        next_request_id: AtomicU64::new(0),
        slow_lines: Mutex::new(VecDeque::new()),
        hists: PhaseHists::register(),
        shutdown: AtomicBool::new(false),
    });
    let acceptor = {
        let shared = Arc::clone(&shared);
        std::thread::spawn(move || {
            loop {
                if shared.shutdown.load(Ordering::Relaxed) {
                    break;
                }
                let Ok(stream) = listener.accept() else {
                    break;
                };
                if shared.shutdown.load(Ordering::Relaxed) {
                    break;
                }
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || handle_conn(&shared, stream));
            }
            if let Endpoint::Unix(path) = &shared.endpoint {
                let _ = std::fs::remove_file(path);
            }
        })
    };
    let metrics_dumper = opts.metrics_file.map(|path| {
        let shared = Arc::clone(&shared);
        let interval = Duration::from_millis(opts.metrics_interval_ms.max(1));
        std::thread::spawn(move || {
            let mut last = Instant::now();
            shared.dump_metrics(&path);
            while !shared.shutdown.load(Ordering::Relaxed) {
                // poll the shutdown flag often so stop() never waits a
                // full interval
                std::thread::sleep(Duration::from_millis(50).min(interval));
                if last.elapsed() >= interval {
                    shared.dump_metrics(&path);
                    last = Instant::now();
                }
            }
            shared.dump_metrics(&path); // final state for post-mortems
        })
    });
    Ok(ServerHandle {
        endpoint,
        shared,
        acceptor,
        metrics_dumper,
    })
}
