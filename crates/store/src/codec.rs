//! Hand-rolled, versioned binary serialization for persisted design-store
//! entries and the server wire protocol.
//!
//! Everything here is **bit-exact**: `f64`s travel as `to_bits` words, so
//! `decode(encode(x))` reproduces `x` down to the sign of zero and NaN
//! payloads — the repo-wide invariant that Pareto fronts are bit-identical
//! across schedulers, thread counts and cache states extends to fronts that
//! round-trip through disk or a socket.
//!
//! ## Entry format (version [`VERSION`])
//!
//! ```text
//! magic "CYDS" | version u8 | key_len u32 | key bytes | payload | fnv1a u64
//! ```
//!
//! The canonical key bytes ([`key_bytes`]) are embedded verbatim and
//! compared on read: the store addresses entries by a *hash* of these bytes,
//! so a (vanishingly unlikely) filename collision degrades to a
//! [`DecodeError::KeyMismatch`] miss instead of serving a wrong front. The
//! trailing FNV-1a checksum covers every preceding byte; a flipped bit or a
//! truncated tail fails closed as a miss, never a panic or a wrong value.
//!
//! All integers are little-endian. Decoding is total: every read is
//! bounds-checked and every element count is sanity-checked against the
//! remaining payload size before allocating.

use cayman_analysis::wpst::WpstNodeId;
use cayman_hls::design::AcceleratorDesign;
use cayman_hls::interface::{InterfaceKind, InterfaceSpec};
use cayman_ir::loops::LoopId;
use cayman_ir::{BlockId, FuncId, InstrId};
use cayman_select::cache::DesignKey;
use cayman_select::{SelectedKernel, Solution};
use std::fmt;

/// Magic bytes opening every persisted entry.
pub const MAGIC: [u8; 4] = *b"CYDS";
/// Current entry/wire format version. Bump on any layout change: readers
/// treat other versions as misses (the writer simply re-persists).
pub const VERSION: u8 = 1;

/// Why a decode failed. The store maps every variant to a clean miss; the
/// variant only picks which counter is bumped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// Input ended before the structure did.
    Truncated,
    /// Leading magic bytes are not [`MAGIC`].
    BadMagic,
    /// Entry written by a different format version.
    VersionMismatch(u8),
    /// Trailing FNV-1a checksum does not cover the bytes read.
    Checksum,
    /// Structurally invalid content (bad enum tag, absurd count, …).
    Malformed(&'static str),
    /// Entry is valid but stores a different key (filename-hash collision).
    KeyMismatch,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "entry truncated"),
            DecodeError::BadMagic => write!(f, "bad magic"),
            DecodeError::VersionMismatch(v) => write!(f, "format version {v} != {VERSION}"),
            DecodeError::Checksum => write!(f, "checksum mismatch"),
            DecodeError::Malformed(what) => write!(f, "malformed entry: {what}"),
            DecodeError::KeyMismatch => write!(f, "stored key differs (hash collision)"),
        }
    }
}

/// 64-bit FNV-1a over `bytes` — the same dependency-free hash the design
/// cache stripes on, used here for checksums and content addresses.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// splitmix64 finaliser, for deriving a second independent address word
/// from an FNV state.
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Little-endian byte sink.
#[derive(Debug, Default)]
pub struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    /// An empty encoder.
    pub fn new() -> Self {
        Enc::default()
    }

    /// The encoded bytes.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }

    /// Current length, for reserving/patching.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// `f64` as its IEEE-754 bit pattern — the bit-exactness keystone.
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    pub fn bytes(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }

    /// Length-prefixed byte string.
    pub fn blob(&mut self, v: &[u8]) {
        self.u32(v.len() as u32);
        self.bytes(v);
    }
}

/// Bounds-checked little-endian reader.
#[derive(Debug)]
pub struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    /// Reads from the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Dec { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.remaining() < n {
            return Err(DecodeError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }

    pub fn u16(&mut self) -> Result<u16, DecodeError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    pub fn u32(&mut self) -> Result<u32, DecodeError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    pub fn u64(&mut self) -> Result<u64, DecodeError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub fn f64(&mut self) -> Result<f64, DecodeError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Length-prefixed byte string.
    pub fn blob(&mut self) -> Result<&'a [u8], DecodeError> {
        let n = self.u32()? as usize;
        self.take(n)
    }

    /// Reads an element count and rejects counts that could not possibly
    /// fit in the remaining bytes (each element occupies at least
    /// `min_elem_bytes`) — corrupt counts must not drive allocations.
    pub fn count(&mut self, min_elem_bytes: usize) -> Result<usize, DecodeError> {
        let n = self.u32()? as usize;
        if n.saturating_mul(min_elem_bytes.max(1)) > self.remaining() {
            return Err(DecodeError::Malformed("element count exceeds payload"));
        }
        Ok(n)
    }
}

/// Stable `InterfaceKind` → tag mapping (append-only; reuse of a retired
/// tag requires a [`VERSION`] bump).
fn kind_tag(kind: InterfaceKind) -> u8 {
    match kind {
        InterfaceKind::Coupled => 0,
        InterfaceKind::Decoupled => 1,
        InterfaceKind::Scratchpad => 2,
        InterfaceKind::BankedScratchpad => 3,
        InterfaceKind::DoubleBuffered => 4,
        InterfaceKind::LineBuffer => 5,
    }
}

fn kind_of(tag: u8) -> Result<InterfaceKind, DecodeError> {
    Ok(match tag {
        0 => InterfaceKind::Coupled,
        1 => InterfaceKind::Decoupled,
        2 => InterfaceKind::Scratchpad,
        3 => InterfaceKind::BankedScratchpad,
        4 => InterfaceKind::DoubleBuffered,
        5 => InterfaceKind::LineBuffer,
        _ => return Err(DecodeError::Malformed("unknown interface kind tag")),
    })
}

/// Canonical byte encoding of a [`DesignKey`] — the content that is hashed
/// into the on-disk address and embedded in the entry for collision
/// detection. Field order is part of the format.
pub fn key_bytes(key: &DesignKey) -> Vec<u8> {
    let mut e = Enc::new();
    e.blob(key.model.name.as_bytes());
    e.u64(key.model.options);
    e.u32(key.candidate.func.0);
    e.u64(key.candidate.content_fp);
    e.u32(key.candidate.blocks.len() as u32);
    for b in &key.candidate.blocks {
        e.u32(b.0);
    }
    e.u64(key.candidate.entries);
    e.u64(key.candidate.cpu_cycles);
    e.u8(u8::from(key.candidate.is_bb));
    e.finish()
}

fn encode_design(e: &mut Enc, d: &AcceleratorDesign) {
    e.u32(d.func.0);
    e.u32(d.blocks.len() as u32);
    for b in &d.blocks {
        e.u32(b.0);
    }
    e.u32(d.unroll);
    e.u32(d.pipelined.len() as u32);
    for l in &d.pipelined {
        e.u32(l.0);
    }
    e.u32(d.pipelined_detail.len() as u32);
    for (l, blocks, unroll) in &d.pipelined_detail {
        e.u32(l.0);
        e.u32(blocks.len() as u32);
        for b in blocks {
            e.u32(b.0);
        }
        e.u32(*unroll);
    }
    e.u32(d.interfaces.len() as u32);
    for (instr, spec) in &d.interfaces {
        e.u32(instr.0);
        e.u8(kind_tag(spec.kind));
        e.u16(spec.banks);
        e.u16(spec.depth);
        e.u16(spec.ports);
    }
    e.u64(d.seq_blocks as u64);
    e.f64(d.accel_cycles_total);
    e.f64(d.area);
    e.u64(d.cpu_cycles);
    e.u64(d.entries);
}

fn decode_design(d: &mut Dec) -> Result<AcceleratorDesign, DecodeError> {
    let func = FuncId(d.u32()?);
    let blocks = (0..d.count(4)?)
        .map(|_| d.u32().map(BlockId))
        .collect::<Result<Vec<_>, _>>()?;
    let unroll = d.u32()?;
    let pipelined = (0..d.count(4)?)
        .map(|_| d.u32().map(LoopId))
        .collect::<Result<Vec<_>, _>>()?;
    let mut pipelined_detail = Vec::new();
    for _ in 0..d.count(12)? {
        let l = LoopId(d.u32()?);
        let blocks = (0..d.count(4)?)
            .map(|_| d.u32().map(BlockId))
            .collect::<Result<Vec<_>, _>>()?;
        pipelined_detail.push((l, blocks, d.u32()?));
    }
    let mut interfaces = Vec::new();
    for _ in 0..d.count(11)? {
        let instr = InstrId(d.u32()?);
        let kind = kind_of(d.u8()?)?;
        interfaces.push((
            instr,
            InterfaceSpec {
                kind,
                banks: d.u16()?,
                depth: d.u16()?,
                ports: d.u16()?,
            },
        ));
    }
    Ok(AcceleratorDesign {
        func,
        blocks,
        unroll,
        pipelined,
        pipelined_detail,
        interfaces,
        seq_blocks: d.u64()? as usize,
        accel_cycles_total: d.f64()?,
        area: d.f64()?,
        cpu_cycles: d.u64()?,
        entries: d.u64()?,
    })
}

/// Encodes a design vector (the memoised `accel(v, R)` result) into the
/// body of an encoder — shared by the entry format and the wire protocol.
pub fn encode_designs(e: &mut Enc, designs: &[AcceleratorDesign]) {
    e.u32(designs.len() as u32);
    for d in designs {
        encode_design(e, d);
    }
}

/// Decodes a design vector written by [`encode_designs`].
pub fn decode_designs(d: &mut Dec) -> Result<Vec<AcceleratorDesign>, DecodeError> {
    // A design is ≥ 60 bytes; 60 is a safe per-element floor for the count
    // sanity check.
    (0..d.count(60)?).map(|_| decode_design(d)).collect()
}

/// Serializes one complete store entry for `key` (see the module docs for
/// the layout).
pub fn encode_entry(key: &DesignKey, designs: &[AcceleratorDesign]) -> Vec<u8> {
    let mut e = Enc::new();
    e.bytes(&MAGIC);
    e.u8(VERSION);
    e.blob(&key_bytes(key));
    encode_designs(&mut e, designs);
    let checksum = fnv1a(&e.buf);
    e.u64(checksum);
    e.finish()
}

/// Decodes a store entry, verifying magic, version, checksum, and that the
/// embedded key equals `expect_key` (the canonical bytes of the key being
/// looked up).
pub fn decode_entry(
    bytes: &[u8],
    expect_key: &[u8],
) -> Result<Vec<AcceleratorDesign>, DecodeError> {
    if bytes.len() < MAGIC.len() + 1 + 8 {
        return Err(DecodeError::Truncated);
    }
    if bytes[..MAGIC.len()] != MAGIC {
        return Err(DecodeError::BadMagic);
    }
    let version = bytes[MAGIC.len()];
    if version != VERSION {
        return Err(DecodeError::VersionMismatch(version));
    }
    let (body, tail) = bytes.split_at(bytes.len() - 8);
    let stored = u64::from_le_bytes(tail.try_into().unwrap());
    if fnv1a(body) != stored {
        return Err(DecodeError::Checksum);
    }
    let mut d = Dec::new(&body[MAGIC.len() + 1..]);
    if d.blob()? != expect_key {
        return Err(DecodeError::KeyMismatch);
    }
    let designs = decode_designs(&mut d)?;
    if d.remaining() != 0 {
        return Err(DecodeError::Malformed("trailing bytes after designs"));
    }
    Ok(designs)
}

/// Encodes a selection front (wire protocol body; no magic/checksum — the
/// frame layer owns integrity there).
pub fn encode_front(e: &mut Enc, front: &[Solution]) {
    e.u32(front.len() as u32);
    for s in front {
        e.f64(s.area);
        e.f64(s.saved_seconds);
        e.u32(s.kernels.len() as u32);
        for k in &s.kernels {
            e.u32(k.node.0);
            encode_design(e, &k.design);
        }
    }
}

/// Decodes a selection front written by [`encode_front`].
pub fn decode_front(d: &mut Dec) -> Result<Vec<Solution>, DecodeError> {
    let mut front = Vec::new();
    for _ in 0..d.count(20)? {
        let area = d.f64()?;
        let saved_seconds = d.f64()?;
        let mut kernels = Vec::new();
        for _ in 0..d.count(64)? {
            let node = WpstNodeId(d.u32()?);
            kernels.push(SelectedKernel {
                node,
                design: decode_design(d)?,
            });
        }
        front.push(Solution {
            kernels,
            area,
            saved_seconds,
        });
    }
    Ok(front)
}

fn design_bits_equal(a: &AcceleratorDesign, b: &AcceleratorDesign) -> bool {
    a.func == b.func
        && a.blocks == b.blocks
        && a.unroll == b.unroll
        && a.pipelined == b.pipelined
        && a.pipelined_detail == b.pipelined_detail
        && a.interfaces == b.interfaces
        && a.seq_blocks == b.seq_blocks
        && a.accel_cycles_total.to_bits() == b.accel_cycles_total.to_bits()
        && a.area.to_bits() == b.area.to_bits()
        && a.cpu_cycles == b.cpu_cycles
        && a.entries == b.entries
}

/// Field-by-field, bit-exact (`to_bits` on floats) design-vector equality.
pub fn designs_bits_equal(a: &[AcceleratorDesign], b: &[AcceleratorDesign]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| design_bits_equal(x, y))
}

/// Bit-exact Pareto-front equality: every solution's area/saving bits, node
/// ids and full design contents must match.
pub fn fronts_bits_equal(a: &[Solution], b: &[Solution]) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|(x, y)| {
            x.area.to_bits() == y.area.to_bits()
                && x.saved_seconds.to_bits() == y.saved_seconds.to_bits()
                && x.kernels.len() == y.kernels.len()
                && x.kernels
                    .iter()
                    .zip(&y.kernels)
                    .all(|(k, l)| k.node == l.node && design_bits_equal(&k.design, &l.design))
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cayman_hls::inputs::CandidateKey;
    use cayman_select::cache::ModelId;

    fn sample_key() -> DesignKey {
        DesignKey {
            model: ModelId {
                name: "cayman",
                options: 0xDEAD_BEEF,
            },
            candidate: CandidateKey {
                func: FuncId(3),
                content_fp: 0x1234_5678_9ABC_DEF0,
                blocks: vec![BlockId(1), BlockId(2), BlockId(7)],
                entries: 42,
                cpu_cycles: 1_000_000,
                is_bb: false,
            },
        }
    }

    fn sample_design() -> AcceleratorDesign {
        AcceleratorDesign {
            func: FuncId(3),
            blocks: vec![BlockId(1), BlockId(2)],
            unroll: 4,
            pipelined: vec![LoopId(0)],
            pipelined_detail: vec![(LoopId(0), vec![BlockId(2)], 4)],
            interfaces: vec![
                (InstrId(9), InterfaceSpec::coupled()),
                (InstrId(11), InterfaceSpec::line_buffer(3)),
            ],
            seq_blocks: 1,
            accel_cycles_total: 1234.5,
            area: -0.0, // sign of zero must survive
            cpu_cycles: 999,
            entries: 42,
        }
    }

    #[test]
    fn entry_roundtrip_is_bit_exact() {
        let key = sample_key();
        let designs = vec![sample_design(), sample_design()];
        let bytes = encode_entry(&key, &designs);
        let decoded = decode_entry(&bytes, &key_bytes(&key)).expect("decodes");
        assert!(designs_bits_equal(&decoded, &designs));
        assert_eq!(decoded[0].area.to_bits(), (-0.0f64).to_bits());
    }

    #[test]
    fn entry_rejects_every_corruption_class() {
        let key = sample_key();
        let bytes = encode_entry(&key, &[sample_design()]);
        let expect = key_bytes(&key);

        let err = |r: Result<Vec<AcceleratorDesign>, DecodeError>| r.unwrap_err();
        assert_eq!(err(decode_entry(&[], &expect)), DecodeError::Truncated);
        assert_eq!(
            err(decode_entry(&bytes[..bytes.len() / 2], &expect)),
            DecodeError::Checksum,
            "mid-entry truncation fails the checksum"
        );
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert_eq!(err(decode_entry(&bad, &expect)), DecodeError::BadMagic);
        let mut bad = bytes.clone();
        bad[4] = VERSION + 1;
        assert_eq!(
            err(decode_entry(&bad, &expect)),
            DecodeError::VersionMismatch(VERSION + 1)
        );
        let mut bad = bytes.clone();
        let mid = bad.len() / 2;
        bad[mid] ^= 0x40;
        assert_eq!(err(decode_entry(&bad, &expect)), DecodeError::Checksum);

        // a different key's bytes → collision miss, not a wrong front
        let mut other = sample_key();
        other.candidate.entries = 43;
        assert_eq!(
            err(decode_entry(&bytes, &key_bytes(&other))),
            DecodeError::KeyMismatch
        );
    }

    #[test]
    fn front_roundtrip_is_bit_exact() {
        let front = vec![
            Solution::default(),
            Solution {
                kernels: vec![SelectedKernel {
                    node: WpstNodeId(5),
                    design: sample_design(),
                }],
                area: 17.25,
                saved_seconds: f64::from_bits(0x7FF8_0000_0000_0001), // NaN payload
            },
        ];
        let mut e = Enc::new();
        encode_front(&mut e, &front);
        let bytes = e.finish();
        let decoded = decode_front(&mut Dec::new(&bytes)).expect("decodes");
        assert!(fronts_bits_equal(&decoded, &front));
    }

    #[test]
    fn key_bytes_are_injective_on_field_tweaks() {
        let base = key_bytes(&sample_key());
        let mut k = sample_key();
        k.candidate.is_bb = true;
        assert_ne!(base, key_bytes(&k));
        let mut k = sample_key();
        k.model.options += 1;
        assert_ne!(base, key_bytes(&k));
        let mut k = sample_key();
        k.candidate.blocks.push(BlockId(8));
        assert_ne!(base, key_bytes(&k));
    }

    #[test]
    fn absurd_counts_are_malformed_not_allocated() {
        // hand-build an entry whose design count claims u32::MAX
        let key = sample_key();
        let mut e = Enc::new();
        e.bytes(&MAGIC);
        e.u8(VERSION);
        e.blob(&key_bytes(&key));
        e.u32(u32::MAX);
        let checksum = fnv1a(&e.buf);
        e.u64(checksum);
        assert_eq!(
            decode_entry(&e.finish(), &key_bytes(&key)).unwrap_err(),
            DecodeError::Malformed("element count exceeds payload")
        );
    }
}
