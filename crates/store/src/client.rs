//! A minimal blocking client for the `caymand` wire protocol.

use crate::server::{Endpoint, Stream};
use crate::wire::{self, Request, Response, SelectReply, StatsReply, WireError};
use std::io;

/// One connection to a running server. Requests are serial per client;
/// open more clients for concurrency.
#[derive(Debug)]
pub struct Client {
    stream: Stream,
}

impl Client {
    /// Connects to a server.
    ///
    /// # Errors
    ///
    /// Propagates connection failures.
    pub fn connect(endpoint: &Endpoint) -> io::Result<Client> {
        Ok(Client {
            stream: endpoint.connect()?,
        })
    }

    fn roundtrip(&mut self, req: &Request) -> Result<Response, WireError> {
        wire::write_frame(&mut self.stream, &wire::encode_request(req))?;
        let payload = wire::read_frame(&mut self.stream)?
            .ok_or(WireError::Protocol("server closed before replying"))?;
        wire::decode_response(&payload)
    }

    /// Submits a textual IR module for analyse + select; returns the
    /// bit-exact Pareto front plus warm/cold counters.
    ///
    /// # Errors
    ///
    /// Fails on wire errors or a server-side parse/analysis error.
    pub fn select_text(&mut self, module_text: &str) -> Result<SelectReply, WireError> {
        match self.roundtrip(&Request::Select {
            module_text: module_text.to_string(),
        })? {
            Response::Select(reply) => Ok(reply),
            Response::Error(msg) => Err(WireError::Server(msg)),
            _ => Err(WireError::Protocol("unexpected response to SELECT")),
        }
    }

    /// Fetches the server's lifetime counters.
    ///
    /// # Errors
    ///
    /// Fails on wire errors.
    pub fn stats(&mut self) -> Result<StatsReply, WireError> {
        match self.roundtrip(&Request::Stats)? {
            Response::Stats(reply) => Ok(reply),
            Response::Error(msg) => Err(WireError::Server(msg)),
            _ => Err(WireError::Protocol("unexpected response to STATS")),
        }
    }

    /// Liveness probe.
    ///
    /// # Errors
    ///
    /// Fails on wire errors.
    pub fn ping(&mut self) -> Result<(), WireError> {
        match self.roundtrip(&Request::Ping)? {
            Response::Pong => Ok(()),
            Response::Error(msg) => Err(WireError::Server(msg)),
            _ => Err(WireError::Protocol("unexpected response to PING")),
        }
    }

    /// Asks the server to shut down; returns once it acknowledges.
    ///
    /// # Errors
    ///
    /// Fails on wire errors.
    pub fn shutdown_server(&mut self) -> Result<(), WireError> {
        match self.roundtrip(&Request::Shutdown)? {
            Response::ShuttingDown => Ok(()),
            Response::Error(msg) => Err(WireError::Server(msg)),
            _ => Err(WireError::Protocol("unexpected response to SHUTDOWN")),
        }
    }
}
