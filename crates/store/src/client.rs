//! A minimal blocking client for the `caymand` wire protocol.

use crate::server::{Endpoint, Stream};
use crate::wire::{
    self, HealthReply, MetricsReply, Request, Response, SelectReply, StatsReply, WireError,
};
use std::io;

/// One connection to a running server. Requests are serial per client;
/// open more clients for concurrency.
#[derive(Debug)]
pub struct Client {
    stream: Stream,
    last_request_id: u64,
}

impl Client {
    /// Connects to a server.
    ///
    /// # Errors
    ///
    /// Propagates connection failures.
    pub fn connect(endpoint: &Endpoint) -> io::Result<Client> {
        Ok(Client {
            stream: endpoint.connect()?,
            last_request_id: 0,
        })
    }

    /// The server-assigned request id of the most recent reply (0 before
    /// any round-trip, or when talking to a pre-telemetry server). This is
    /// the id the server's slow-request log and request span tree use, so
    /// a client-side observation can be joined with the server's.
    pub fn last_request_id(&self) -> u64 {
        self.last_request_id
    }

    fn roundtrip(&mut self, req: &Request) -> Result<Response, WireError> {
        wire::write_frame(&mut self.stream, &wire::encode_request(req))?;
        let payload = wire::read_frame(&mut self.stream)?
            .ok_or(WireError::Protocol("server closed before replying"))?;
        let decoded = wire::decode_response(&payload)?;
        self.last_request_id = decoded.request_id;
        Ok(decoded.response)
    }

    /// Submits a textual IR module for analyse + select; returns the
    /// bit-exact Pareto front plus warm/cold counters.
    ///
    /// # Errors
    ///
    /// Fails on wire errors or a server-side parse/analysis error.
    pub fn select_text(&mut self, module_text: &str) -> Result<SelectReply, WireError> {
        match self.roundtrip(&Request::Select {
            module_text: module_text.to_string(),
        })? {
            Response::Select(reply) => Ok(reply),
            Response::Error(msg) => Err(WireError::Server(msg)),
            _ => Err(WireError::Protocol("unexpected response to SELECT")),
        }
    }

    /// Fetches the server's lifetime counters.
    ///
    /// # Errors
    ///
    /// Fails on wire errors.
    pub fn stats(&mut self) -> Result<StatsReply, WireError> {
        match self.roundtrip(&Request::Stats)? {
            Response::Stats(reply) => Ok(reply),
            Response::Error(msg) => Err(WireError::Server(msg)),
            _ => Err(WireError::Protocol("unexpected response to STATS")),
        }
    }

    /// Liveness probe.
    ///
    /// # Errors
    ///
    /// Fails on wire errors.
    pub fn ping(&mut self) -> Result<(), WireError> {
        match self.roundtrip(&Request::Ping)? {
            Response::Pong => Ok(()),
            Response::Error(msg) => Err(WireError::Server(msg)),
            _ => Err(WireError::Protocol("unexpected response to PING")),
        }
    }

    /// Health probe: uptime and request count alongside liveness.
    ///
    /// # Errors
    ///
    /// Fails on wire errors.
    pub fn health(&mut self) -> Result<HealthReply, WireError> {
        match self.roundtrip(&Request::Health)? {
            Response::Health(reply) => Ok(reply),
            Response::Error(msg) => Err(WireError::Server(msg)),
            _ => Err(WireError::Protocol("unexpected response to HEALTH")),
        }
    }

    /// Fetches the server's Prometheus-style metrics exposition.
    ///
    /// # Errors
    ///
    /// Fails on wire errors.
    pub fn metrics(&mut self) -> Result<MetricsReply, WireError> {
        match self.roundtrip(&Request::Metrics)? {
            Response::Metrics(reply) => Ok(reply),
            Response::Error(msg) => Err(WireError::Server(msg)),
            _ => Err(WireError::Protocol("unexpected response to METRICS")),
        }
    }

    /// Asks the server to shut down; returns once it acknowledges.
    ///
    /// # Errors
    ///
    /// Fails on wire errors.
    pub fn shutdown_server(&mut self) -> Result<(), WireError> {
        match self.roundtrip(&Request::Shutdown)? {
            Response::ShuttingDown => Ok(()),
            Response::Error(msg) => Err(WireError::Server(msg)),
            _ => Err(WireError::Protocol("unexpected response to SHUTDOWN")),
        }
    }
}
