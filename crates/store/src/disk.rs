//! The content-addressed on-disk design store.
//!
//! One store directory holds memoised `accel(v, R)` results keyed by
//! `fingerprint(model × candidate)` and is shared by every process that
//! points `CAYMAN_STORE_DIR` (or an explicit [`DiskStore::open`]) at it —
//! `table2`, `fig6`, `ablation`, the server and ad-hoc clients all read and
//! write the same objects.
//!
//! ## Layout
//!
//! ```text
//! <dir>/objects/<aa>/<32-hex-address>.cyd
//! ```
//!
//! The address is 128 bits derived from the canonical key bytes
//! ([`crate::codec::key_bytes`]): FNV-1a over the bytes, plus a splitmix64
//! finalisation of that state — two independent 64-bit words, rendered as
//! hex. The first byte fans entries out over 256 subdirectories. The full
//! key bytes are embedded in every entry and compared on read, so even an
//! address collision degrades to a miss, never a wrong front.
//!
//! ## Guarantees
//!
//! * **Atomic writes** — entries are written to a `.tmp-*` file in the same
//!   directory and `rename`d into place (atomic on POSIX), so concurrent
//!   writers and crashed processes can never expose a half-written entry.
//! * **Corruption tolerance** — any unreadable, truncated, bit-flipped,
//!   version-mismatched or collided entry is a counted miss; bad entries
//!   are unlinked so they are re-persisted on the next insert.
//! * **Bounded size** — an amortised mtime-LRU sweep (every
//!   [`StoreOptions::sweep_every`] writes, and on open) evicts the
//!   least-recently-used entries once the store exceeds
//!   [`StoreOptions::max_bytes`], down to ¾ of the cap. Hits refresh the
//!   entry mtime (best-effort), approximating LRU across processes.

use crate::codec::{self, DecodeError};
use cayman_hls::design::AcceleratorDesign;
use cayman_select::cache::{DesignKey, DesignStoreBackend};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, SystemTime};

/// Environment variable naming the shared store directory.
pub const STORE_DIR_ENV: &str = "CAYMAN_STORE_DIR";
/// Environment variable overriding [`StoreOptions::max_bytes`].
pub const STORE_MAX_BYTES_ENV: &str = "CAYMAN_STORE_MAX_BYTES";

/// Entry filename suffix.
const ENTRY_EXT: &str = "cyd";
/// Temp-file prefix for in-flight atomic writes.
const TMP_PREFIX: &str = ".tmp-";
/// Stale in-flight files older than this are removed by sweeps (a crashed
/// writer's leftovers).
const STALE_TMP: Duration = Duration::from_secs(3600);

/// Tunables for a [`DiskStore`].
#[derive(Debug, Clone, Copy)]
pub struct StoreOptions {
    /// Size cap in bytes; a sweep evicts oldest-first down to ¾ of this.
    pub max_bytes: u64,
    /// Run the eviction sweep every this-many writes (amortisation).
    pub sweep_every: u64,
}

impl Default for StoreOptions {
    fn default() -> Self {
        StoreOptions {
            // Entries are a few hundred bytes to a few KiB; 256 MiB holds
            // millions of designs — effectively unbounded for the corpus,
            // a real bound for a long-running service.
            max_bytes: 256 << 20,
            sweep_every: 256,
        }
    }
}

impl StoreOptions {
    /// Defaults with [`STORE_MAX_BYTES_ENV`] applied when set and parseable.
    pub fn from_env() -> Self {
        let mut opts = StoreOptions::default();
        if let Some(v) = std::env::var(STORE_MAX_BYTES_ENV)
            .ok()
            .and_then(|s| s.parse::<u64>().ok())
        {
            opts.max_bytes = v;
        }
        opts
    }
}

/// Lifetime counters of one [`DiskStore`] handle.
///
/// These are the store's own atomics (always counted, independent of
/// whether `cayman-obs` tracing is enabled) so tests and the server can
/// assert on them; every bump is mirrored to the obs counters
/// `store.hit` / `store.miss` / `store.corrupt` / `store.evict` /
/// `store.write`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Loads answered with a decoded entry.
    pub hits: u64,
    /// Loads that found no entry (or an unreadable file).
    pub misses: u64,
    /// Entries rejected as corrupt (bad magic/checksum/truncated/malformed).
    pub corrupt: u64,
    /// Entries rejected for a different format version.
    pub version_skew: u64,
    /// Entries rejected because the embedded key differed (address
    /// collision).
    pub key_mismatches: u64,
    /// Entries persisted.
    pub writes: u64,
    /// Entries evicted by size-bound sweeps.
    pub evictions: u64,
    /// Bytes reclaimed by evictions.
    pub evicted_bytes: u64,
}

/// A content-addressed, size-bounded, corruption-tolerant design store
/// rooted at one directory. Cheap to share behind an `Arc`; all methods
/// take `&self`.
#[derive(Debug)]
pub struct DiskStore {
    dir: PathBuf,
    opts: StoreOptions,
    write_tick: AtomicU64,
    tmp_seq: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    corrupt: AtomicU64,
    version_skew: AtomicU64,
    key_mismatches: AtomicU64,
    writes: AtomicU64,
    evictions: AtomicU64,
    evicted_bytes: AtomicU64,
}

impl DiskStore {
    /// Opens (creating if needed) a store rooted at `dir`, with
    /// [`StoreOptions::from_env`] tunables.
    ///
    /// # Errors
    ///
    /// Fails when the directory cannot be created.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<DiskStore> {
        Self::open_with(dir, StoreOptions::from_env())
    }

    /// Opens (creating if needed) a store rooted at `dir` with explicit
    /// tunables, and runs one initial sweep so a previously over-full store
    /// is trimmed on startup.
    ///
    /// # Errors
    ///
    /// Fails when the directory cannot be created.
    pub fn open_with(dir: impl Into<PathBuf>, opts: StoreOptions) -> io::Result<DiskStore> {
        let dir = dir.into();
        fs::create_dir_all(dir.join("objects"))?;
        let store = DiskStore {
            dir,
            opts,
            write_tick: AtomicU64::new(0),
            tmp_seq: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            corrupt: AtomicU64::new(0),
            version_skew: AtomicU64::new(0),
            key_mismatches: AtomicU64::new(0),
            writes: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            evicted_bytes: AtomicU64::new(0),
        };
        store.sweep();
        Ok(store)
    }

    /// Opens the store named by [`STORE_DIR_ENV`], or `None` when the
    /// variable is unset. An unusable directory is an error, not a silent
    /// no-op.
    ///
    /// # Errors
    ///
    /// Fails when the variable is set but the directory cannot be created.
    pub fn from_env() -> Option<io::Result<DiskStore>> {
        std::env::var_os(STORE_DIR_ENV).map(DiskStore::open)
    }

    /// The store's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Counter snapshot.
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            corrupt: self.corrupt.load(Ordering::Relaxed),
            version_skew: self.version_skew.load(Ordering::Relaxed),
            key_mismatches: self.key_mismatches.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            evicted_bytes: self.evicted_bytes.load(Ordering::Relaxed),
        }
    }

    /// 128-bit content address of a key, as 32 hex characters.
    fn address(key_bytes: &[u8]) -> String {
        let lo = codec::fnv1a(key_bytes);
        let hi = codec::splitmix64(lo);
        format!("{hi:016x}{lo:016x}")
    }

    /// The entry path for an address: `objects/<first-2-hex>/<addr>.cyd`.
    fn entry_path(&self, addr: &str) -> PathBuf {
        self.dir
            .join("objects")
            .join(&addr[..2])
            .join(format!("{addr}.{ENTRY_EXT}"))
    }

    /// Loads and decodes the entry for `key`, counting the outcome. Every
    /// failure mode is a miss.
    pub fn load(&self, key: &DesignKey) -> Option<Vec<AcceleratorDesign>> {
        let span = cayman_obs::timed("store.load");
        let kb = codec::key_bytes(key);
        let path = self.entry_path(&Self::address(&kb));
        let result = self.load_at(&path, &kb);
        span.finish();
        result
    }

    fn load_at(&self, path: &Path, kb: &[u8]) -> Option<Vec<AcceleratorDesign>> {
        let bytes = match fs::read(path) {
            Ok(b) => b,
            Err(_) => {
                // absent (the common cold case) or unreadable — a miss
                self.misses.fetch_add(1, Ordering::Relaxed);
                cayman_obs::counter("store.miss", 1);
                return None;
            }
        };
        match codec::decode_entry(&bytes, kb) {
            Ok(designs) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                cayman_obs::counter("store.hit", 1);
                // refresh the LRU clock (best-effort; mtime is advisory)
                if let Ok(f) = fs::File::options().append(true).open(path) {
                    let _ = f.set_modified(SystemTime::now());
                }
                Some(designs)
            }
            Err(err) => {
                match err {
                    DecodeError::VersionMismatch(_) => {
                        self.version_skew.fetch_add(1, Ordering::Relaxed);
                        cayman_obs::counter("store.version_skew", 1);
                        // written by another format generation: unlink so
                        // this generation can re-persist under the address
                        let _ = fs::remove_file(path);
                    }
                    DecodeError::KeyMismatch => {
                        // a *valid* entry for a different key shares our
                        // address; leave it (last-writer-wins on save)
                        self.key_mismatches.fetch_add(1, Ordering::Relaxed);
                        cayman_obs::counter("store.key_mismatch", 1);
                    }
                    _ => {
                        self.corrupt.fetch_add(1, Ordering::Relaxed);
                        cayman_obs::counter("store.corrupt", 1);
                        cayman_obs::diag("store.corrupt", || format!("{}: {err}", path.display()));
                        let _ = fs::remove_file(path);
                    }
                }
                self.misses.fetch_add(1, Ordering::Relaxed);
                cayman_obs::counter("store.miss", 1);
                None
            }
        }
    }

    /// Persists `designs` under `key` atomically (temp file + rename).
    /// Failures are swallowed: the store is an optimisation layer, and a
    /// full disk or permission error must never take selection down.
    pub fn save(&self, key: &DesignKey, designs: &[AcceleratorDesign]) {
        let span = cayman_obs::timed("store.save");
        let kb = codec::key_bytes(key);
        let bytes = codec::encode_entry(key, designs);
        let path = self.entry_path(&Self::address(&kb));
        if self.save_at(&path, &bytes).is_ok() {
            self.writes.fetch_add(1, Ordering::Relaxed);
            cayman_obs::counter("store.write", 1);
            let tick = self.write_tick.fetch_add(1, Ordering::Relaxed) + 1;
            if tick.is_multiple_of(self.opts.sweep_every) {
                self.sweep();
            }
        }
        span.finish();
    }

    fn save_at(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        let parent = path.parent().expect("entry path has a parent");
        fs::create_dir_all(parent)?;
        // unique per process × in-flight write: concurrent writers never
        // collide on the temp name, so a rename always moves its own bytes
        let tmp = parent.join(format!(
            "{TMP_PREFIX}{}-{}",
            std::process::id(),
            self.tmp_seq.fetch_add(1, Ordering::Relaxed),
        ));
        fs::write(&tmp, bytes)?;
        fs::rename(&tmp, path).inspect_err(|_| {
            let _ = fs::remove_file(&tmp);
        })
    }

    /// Walks the object tree. Yields `(path, len, mtime)` per regular file.
    fn walk(&self) -> Vec<(PathBuf, u64, SystemTime)> {
        let mut out = Vec::new();
        let Ok(shards) = fs::read_dir(self.dir.join("objects")) else {
            return out;
        };
        for shard in shards.flatten() {
            let Ok(files) = fs::read_dir(shard.path()) else {
                continue;
            };
            for f in files.flatten() {
                if let Ok(meta) = f.metadata() {
                    if meta.is_file() {
                        let mtime = meta.modified().unwrap_or(SystemTime::UNIX_EPOCH);
                        out.push((f.path(), meta.len(), mtime));
                    }
                }
            }
        }
        out
    }

    /// Number of live entries (excludes in-flight temp files).
    pub fn entry_count(&self) -> usize {
        self.walk()
            .iter()
            .filter(|(p, _, _)| p.extension().is_some_and(|e| e == ENTRY_EXT))
            .count()
    }

    /// Total bytes of live entries.
    pub fn total_bytes(&self) -> u64 {
        self.walk()
            .iter()
            .filter(|(p, _, _)| p.extension().is_some_and(|e| e == ENTRY_EXT))
            .map(|(_, len, _)| len)
            .sum()
    }

    /// One eviction sweep: drops stale temp files, then — if the live
    /// entries exceed the size cap — unlinks oldest-mtime entries until the
    /// store is at ¾ of the cap. Concurrent sweeps from other processes are
    /// benign (unlink of an already-unlinked file is a no-op).
    pub fn sweep(&self) {
        let span = cayman_obs::timed("store.sweep");
        let now = SystemTime::now();
        let mut entries = Vec::new();
        let mut total = 0u64;
        for (path, len, mtime) in self.walk() {
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if name.starts_with(TMP_PREFIX) {
                if now.duration_since(mtime).unwrap_or_default() > STALE_TMP {
                    let _ = fs::remove_file(&path);
                }
                continue;
            }
            if !name.ends_with(&format!(".{ENTRY_EXT}")) {
                continue;
            }
            total += len;
            entries.push((path, len, mtime));
        }
        if total > self.opts.max_bytes {
            let target = self.opts.max_bytes / 4 * 3;
            entries.sort_by_key(|(_, _, mtime)| *mtime);
            for (path, len, _) in entries {
                if total <= target {
                    break;
                }
                if fs::remove_file(&path).is_ok() {
                    total = total.saturating_sub(len);
                    self.evictions.fetch_add(1, Ordering::Relaxed);
                    self.evicted_bytes.fetch_add(len, Ordering::Relaxed);
                    cayman_obs::counter("store.evict", 1);
                }
            }
        }
        span.finish();
    }
}

impl DesignStoreBackend for DiskStore {
    fn load(&self, key: &DesignKey) -> Option<Vec<AcceleratorDesign>> {
        DiskStore::load(self, key)
    }

    fn save(&self, key: &DesignKey, designs: &[AcceleratorDesign]) {
        DiskStore::save(self, key, designs)
    }
}
