//! # cayman-store
//!
//! Cayman-as-a-service: the content-addressed **persistent design store**
//! and the **batch analyse/select server** (DESIGN.md §11).
//!
//! * [`codec`] — hand-rolled, versioned, bit-exact binary serialization of
//!   design keys, design vectors and Pareto fronts (entry format + wire
//!   bodies),
//! * [`disk`] — [`disk::DiskStore`]: the on-disk second level under the
//!   16-stripe `DesignCache` (atomic writes, corruption-tolerant reads,
//!   mtime-LRU size-bounded eviction, shared safely across processes),
//! * [`wire`] — length-prefixed framing and the request/response protocol,
//! * [`server`] — the `caymand` accept loop batching concurrent clients
//!   through shared warm `Framework`s + one shared store, with
//!   request-scoped telemetry (server-assigned request ids, per-phase
//!   latency histograms, a slow-request log) and a metrics/health wire
//!   surface (DESIGN.md §12),
//! * [`client`] — a minimal blocking client.
//!
//! The store plugs in under any `Framework` via
//! `Framework::set_design_store`; the bench binaries attach it when
//! `CAYMAN_STORE_DIR` is set, so a second `table2 --corpus` run is served
//! disk-warm with zero model evaluations.

pub mod client;
pub mod codec;
pub mod disk;
pub mod server;
pub mod wire;

pub use client::Client;
pub use codec::{designs_bits_equal, fronts_bits_equal, DecodeError};
pub use disk::{DiskStore, StoreOptions, StoreStats, STORE_DIR_ENV, STORE_MAX_BYTES_ENV};
pub use server::{
    serve, Endpoint, ServerHandle, ServerOptions, METRICS_INTERVAL_MS_ENV, REQ_TIMEOUT_MS_ENV,
    SLOW_REQ_MS_ENV,
};
pub use wire::{HealthReply, MetricsReply, SelectReply, StatsReply, WireError};
