//! CI smoke for the server + store (ISSUE 9 satellite): boots `caymand`
//! in-process on a Unix socket with a fresh store directory, submits a
//! corpus kernel over the socket, and asserts
//!
//! 1. the served front is **bit-identical** to an in-process
//!    `Framework::from_text` + `select` on the same text,
//! 2. a repeat request on the warm server reuses the framework and runs
//!    **zero** model evaluations (memory-warm),
//! 3. a *restarted* server on the same store directory still serves the
//!    bit-identical front with **zero cold `accel(v, R)` evaluations** —
//!    the designs come off disk (disk-warm), proven by the request
//!    counters and the store's hit counter,
//! 4. (ISSUE 10) the telemetry surface works end-to-end: HEALTH and
//!    METRICS round-trip, the exposition **validates** (no duplicate
//!    series, monotone histogram buckets) and carries the per-phase
//!    request histograms, reply request ids are the server's sequence,
//!    and the slow-request log (forced on with a 0ms threshold) names
//!    the same ids in its stable `slow-req id=…` format.
//!
//! Exits non-zero (panics) on any violation; prints one OK line otherwise.

use cayman::{Framework, SelectOptions};
use cayman_store::{fronts_bits_equal, serve, Client, Endpoint, ServerOptions};
use std::path::Path;

fn main() {
    cayman_obs::init_from_env();
    let tmp = std::env::temp_dir().join(format!("cayman-serversmoke-{}", std::process::id()));
    let store_dir = tmp.join("store");
    std::fs::create_dir_all(&tmp).expect("create smoke dir");

    // one real corpus kernel, submitted as text exactly as a client would
    let corpus = cayman::workloads::corpus::corpus();
    let w = corpus.first().expect("corpus is non-empty");
    let text = w.module.to_text();

    // the in-process reference the server must match bit-for-bit
    let reference = Framework::from_text(&text)
        .expect("corpus kernel analyses")
        .select(&SelectOptions::default());

    // ---- phase 1: cold server, cold store ----
    let server = serve(
        Endpoint::Unix(tmp.join("caymand-a.sock")),
        ServerOptions {
            store_dir: Some(store_dir.clone()),
            // threshold 0: every request is "slow", so the log is testable
            slow_req_ms: Some(0),
            ..Default::default()
        },
    )
    .expect("server starts");
    let mut client = Client::connect(server.endpoint()).expect("connects");
    client.ping().expect("pings");
    assert_eq!(client.last_request_id(), 1, "ids are a sequence from 1");

    let cold = client.select_text(&text).expect("cold select");
    assert_eq!(cold.request_id, 2, "second request gets id 2");
    assert_eq!(client.last_request_id(), 2, "client tracks the reply id");
    assert!(
        fronts_bits_equal(&cold.front, &reference.pareto),
        "{}: served front diverges from in-process selection",
        w.name
    );
    assert!(cold.model_evals > 0, "cold request must run the model");
    assert!(
        !cold.framework_reused,
        "first request analyses from scratch"
    );

    let warm = client.select_text(&text).expect("memory-warm select");
    assert!(fronts_bits_equal(&warm.front, &reference.pareto));
    assert!(warm.framework_reused, "repeat request reuses the framework");
    assert_eq!(warm.model_evals, 0, "memory-warm request skips the model");

    let stats = client.stats().expect("stats");
    let store_stats = stats.store.expect("store attached");
    assert!(store_stats.writes > 0, "cold run persisted designs");

    // ---- telemetry surface (ISSUE 10) ----
    let health = client.health().expect("health");
    assert!(health.healthy, "server reports healthy");
    assert!(health.uptime_nanos > 0, "uptime advances");
    assert!(health.requests >= 4, "health sees the earlier requests");
    assert_eq!(
        health.request_id,
        client.last_request_id(),
        "health reply carries its own request id"
    );

    let metrics = client.metrics().expect("metrics");
    assert_eq!(metrics.request_id, client.last_request_id());
    let exp = cayman_obs::promtext::validate(&metrics.text)
        .expect("exposition parses and validates (no duplicate series, monotone buckets)");
    for phase in ["decode", "warm", "select", "encode", "total"] {
        let name = format!("cayman_req_{phase}_nanos");
        assert!(
            exp.histogram_names().contains(&name.as_str()),
            "exposition misses the {phase} phase histogram"
        );
        let count = exp
            .value(&format!("{name}_count"))
            .expect("histogram has _count");
        let sum = exp
            .value(&format!("{name}_sum"))
            .expect("histogram has _sum");
        assert!(count >= 1.0, "{name}: at least one request recorded");
        assert!(sum >= 0.0, "{name}: sum is non-negative");
    }
    assert!(
        exp.value("cayman_server_requests").unwrap_or(0.0) >= 5.0,
        "server request counter is exported"
    );
    assert!(
        exp.value("cayman_cache_mem_inserts").unwrap_or(0.0) > 0.0,
        "design-cache counters are exported"
    );
    assert!(
        exp.value("cayman_store_writes").unwrap_or(0.0) > 0.0,
        "store counters are exported"
    );

    // the slow-request log (threshold 0) named every request by its id,
    // in the stable machine-splittable format
    let slow = server.slow_log();
    assert!(!slow.is_empty(), "slow log captured requests");
    for line in &slow {
        assert!(line.starts_with("slow-req id="), "slow line format: {line}");
        for key in [
            "op=",
            "total_us=",
            "decode_us=",
            "warm_us=",
            "select_us=",
            "encode_us=",
        ] {
            assert!(line.contains(key), "slow line misses {key}: {line}");
        }
    }
    let select_line = slow
        .iter()
        .find(|l| l.contains(&format!("id={} ", cold.request_id)))
        .expect("the cold select shows up in the slow log under its reply id");
    assert!(
        select_line.contains("op=select"),
        "slow line names the op: {select_line}"
    );

    client.shutdown_server().expect("shuts down");
    server.wait();

    // ---- phase 2: fresh server, warm store ----
    let server = serve(
        Endpoint::Unix(tmp.join("caymand-b.sock")),
        ServerOptions {
            store_dir: Some(store_dir.clone()),
            ..Default::default()
        },
    )
    .expect("server restarts");
    let mut client = Client::connect(server.endpoint()).expect("reconnects");
    let disk_warm = client.select_text(&text).expect("disk-warm select");
    assert!(
        !disk_warm.framework_reused,
        "restarted server re-analyses the module"
    );
    assert!(
        fronts_bits_equal(&disk_warm.front, &reference.pareto),
        "{}: disk-served front diverges from in-process selection",
        w.name
    );
    assert_eq!(
        disk_warm.model_evals, 0,
        "disk-warm request must run zero cold accel(v, R) evaluations"
    );
    assert!(
        disk_warm.disk_hits > 0,
        "designs must come off the disk store"
    );
    let stats = client.stats().expect("stats");
    let store_stats = stats.store.expect("store attached");
    assert!(store_stats.hits > 0, "store served hits");
    assert_eq!(store_stats.corrupt, 0, "no corruption in a clean store");
    client.shutdown_server().expect("shuts down");
    server.wait();

    let entries = walk_count(&store_dir);
    let _ = std::fs::remove_dir_all(&tmp);
    println!(
        "serversmoke: OK ({}: front bit-identical cold/memory-warm/disk-warm, \
         {} model evals cold, {} disk hits warm, {entries} store entries, \
         exposition valid, {} slow-log lines)",
        w.name,
        cold.model_evals,
        disk_warm.disk_hits,
        slow.len()
    );
}

fn walk_count(dir: &Path) -> usize {
    let mut n = 0;
    if let Ok(shards) = std::fs::read_dir(dir.join("objects")) {
        for shard in shards.flatten() {
            if let Ok(files) = std::fs::read_dir(shard.path()) {
                n += files.flatten().count();
            }
        }
    }
    n
}
