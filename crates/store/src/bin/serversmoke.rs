//! CI smoke for the server + store (ISSUE 9 satellite): boots `caymand`
//! in-process on a Unix socket with a fresh store directory, submits a
//! corpus kernel over the socket, and asserts
//!
//! 1. the served front is **bit-identical** to an in-process
//!    `Framework::from_text` + `select` on the same text,
//! 2. a repeat request on the warm server reuses the framework and runs
//!    **zero** model evaluations (memory-warm),
//! 3. a *restarted* server on the same store directory still serves the
//!    bit-identical front with **zero cold `accel(v, R)` evaluations** —
//!    the designs come off disk (disk-warm), proven by the request
//!    counters and the store's hit counter.
//!
//! Exits non-zero (panics) on any violation; prints one OK line otherwise.

use cayman::{Framework, SelectOptions};
use cayman_store::{fronts_bits_equal, serve, Client, Endpoint, ServerOptions};
use std::path::Path;

fn main() {
    cayman_obs::init_from_env();
    let tmp = std::env::temp_dir().join(format!("cayman-serversmoke-{}", std::process::id()));
    let store_dir = tmp.join("store");
    std::fs::create_dir_all(&tmp).expect("create smoke dir");

    // one real corpus kernel, submitted as text exactly as a client would
    let corpus = cayman::workloads::corpus::corpus();
    let w = corpus.first().expect("corpus is non-empty");
    let text = w.module.to_text();

    // the in-process reference the server must match bit-for-bit
    let reference = Framework::from_text(&text)
        .expect("corpus kernel analyses")
        .select(&SelectOptions::default());

    // ---- phase 1: cold server, cold store ----
    let server = serve(
        Endpoint::Unix(tmp.join("caymand-a.sock")),
        ServerOptions {
            store_dir: Some(store_dir.clone()),
            ..Default::default()
        },
    )
    .expect("server starts");
    let mut client = Client::connect(server.endpoint()).expect("connects");
    client.ping().expect("pings");

    let cold = client.select_text(&text).expect("cold select");
    assert!(
        fronts_bits_equal(&cold.front, &reference.pareto),
        "{}: served front diverges from in-process selection",
        w.name
    );
    assert!(cold.model_evals > 0, "cold request must run the model");
    assert!(
        !cold.framework_reused,
        "first request analyses from scratch"
    );

    let warm = client.select_text(&text).expect("memory-warm select");
    assert!(fronts_bits_equal(&warm.front, &reference.pareto));
    assert!(warm.framework_reused, "repeat request reuses the framework");
    assert_eq!(warm.model_evals, 0, "memory-warm request skips the model");

    let stats = client.stats().expect("stats");
    let store_stats = stats.store.expect("store attached");
    assert!(store_stats.writes > 0, "cold run persisted designs");
    client.shutdown_server().expect("shuts down");
    server.wait();

    // ---- phase 2: fresh server, warm store ----
    let server = serve(
        Endpoint::Unix(tmp.join("caymand-b.sock")),
        ServerOptions {
            store_dir: Some(store_dir.clone()),
            ..Default::default()
        },
    )
    .expect("server restarts");
    let mut client = Client::connect(server.endpoint()).expect("reconnects");
    let disk_warm = client.select_text(&text).expect("disk-warm select");
    assert!(
        !disk_warm.framework_reused,
        "restarted server re-analyses the module"
    );
    assert!(
        fronts_bits_equal(&disk_warm.front, &reference.pareto),
        "{}: disk-served front diverges from in-process selection",
        w.name
    );
    assert_eq!(
        disk_warm.model_evals, 0,
        "disk-warm request must run zero cold accel(v, R) evaluations"
    );
    assert!(
        disk_warm.disk_hits > 0,
        "designs must come off the disk store"
    );
    let stats = client.stats().expect("stats");
    let store_stats = stats.store.expect("store attached");
    assert!(store_stats.hits > 0, "store served hits");
    assert_eq!(store_stats.corrupt, 0, "no corruption in a clean store");
    client.shutdown_server().expect("shuts down");
    server.wait();

    let entries = walk_count(&store_dir);
    let _ = std::fs::remove_dir_all(&tmp);
    println!(
        "serversmoke: OK ({}: front bit-identical cold/memory-warm/disk-warm, \
         {} model evals cold, {} disk hits warm, {entries} store entries)",
        w.name, cold.model_evals, disk_warm.disk_hits
    );
}

fn walk_count(dir: &Path) -> usize {
    let mut n = 0;
    if let Ok(shards) = std::fs::read_dir(dir.join("objects")) {
        for shard in shards.flatten() {
            if let Ok(files) = std::fs::read_dir(shard.path()) {
                n += files.flatten().count();
            }
        }
    }
    n
}
