//! CI gate for the metrics surface (ISSUE 10 satellite): boots `caymand`
//! in-process with a `--metrics-file`-style periodic dump, hammers it with
//! N concurrent clients, scrapes METRICS over the wire, and validates the
//! exposition with the dependency-free parser — rejecting duplicate
//! series, non-monotone histogram buckets, and `_sum`/`_count`
//! inconsistencies. Also asserts the periodic dump file validates and that
//! per-phase histogram counts cover every request the clients sent.
//!
//! Exits non-zero (panics) on any violation; prints one OK line otherwise.

use cayman_obs::promtext;
use cayman_store::{serve, Client, Endpoint, ServerOptions};

const CLIENTS: usize = 6;
const REQS_PER_CLIENT: usize = 8;

fn main() {
    cayman_obs::init_from_env();
    let tmp = std::env::temp_dir().join(format!("cayman-metricsmoke-{}", std::process::id()));
    std::fs::create_dir_all(&tmp).expect("create smoke dir");
    let dump = tmp.join("metrics.prom");

    let server = serve(
        Endpoint::Unix(tmp.join("caymand.sock")),
        ServerOptions {
            metrics_file: Some(dump.clone()),
            metrics_interval_ms: 50,
            ..Default::default()
        },
    )
    .expect("server starts");

    let corpus = cayman::workloads::corpus::corpus();
    let w = corpus.first().expect("corpus is non-empty");
    let text = w.module.to_text();

    // N concurrent clients, mixed opcodes — the histograms must absorb
    // parallel recording without losing counts
    std::thread::scope(|s| {
        for _ in 0..CLIENTS {
            let endpoint = server.endpoint().clone();
            let text = &text;
            s.spawn(move || {
                let mut c = Client::connect(&endpoint).expect("client connects");
                for i in 0..REQS_PER_CLIENT {
                    match i % 3 {
                        0 => drop(c.select_text(text).expect("select")),
                        1 => c.ping().expect("ping"),
                        _ => drop(c.health().expect("health")),
                    }
                    assert!(c.last_request_id() > 0, "every reply carries an id");
                }
            });
        }
    });

    // scrape over the wire and validate strictly
    let mut client = Client::connect(server.endpoint()).expect("scraper connects");
    let metrics = client.metrics().expect("metrics");
    let exp = promtext::validate(&metrics.text)
        .unwrap_or_else(|e| panic!("wire exposition invalid: {e}"));

    let sent = (CLIENTS * REQS_PER_CLIENT) as f64;
    let total = exp
        .value("cayman_req_total_nanos_count")
        .expect("req.total histogram exported");
    assert!(
        total >= sent,
        "per-phase histograms lost requests: counted {total}, clients sent {sent}"
    );
    for phase in ["decode", "warm", "select", "encode"] {
        let name = format!("cayman_req_{phase}_nanos");
        assert!(
            exp.histogram_names().contains(&name.as_str()),
            "missing {phase} histogram"
        );
        let sum = exp.value(&format!("{name}_sum")).expect("_sum exported");
        let count = exp
            .value(&format!("{name}_count"))
            .expect("_count exported");
        assert!(
            count == 0.0 || sum >= 0.0,
            "{name}: _sum/_count inconsistent"
        );
    }
    assert!(
        exp.value("cayman_server_requests").unwrap_or(0.0) > sent,
        "server request counter covers the fleet plus this scrape"
    );

    // the periodic dump landed and validates too (written at least once
    // at startup and every 50ms since)
    std::thread::sleep(std::time::Duration::from_millis(200));
    let dumped = std::fs::read_to_string(&dump).expect("metrics file dumped");
    promtext::validate(&dumped).unwrap_or_else(|e| panic!("dumped exposition invalid: {e}"));

    client.shutdown_server().expect("shutdown");
    server.wait();
    let _ = std::fs::remove_dir_all(&tmp);
    println!(
        "metricsmoke: OK ({CLIENTS} clients x {REQS_PER_CLIENT} reqs, exposition valid on the \
         wire and in the dump file, {total} requests in the phase histograms)"
    );
}
