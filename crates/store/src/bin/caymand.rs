//! `caymand` — the long-running Cayman analyse/select daemon.
//!
//! ```text
//! caymand --unix /run/caymand.sock [--store DIR] [--threads N] [--max-frameworks N]
//! caymand --tcp 127.0.0.1:7164    [--store DIR] [--threads N] [--max-frameworks N]
//!         [--metrics-file PATH]
//! ```
//!
//! `--store` defaults to `CAYMAN_STORE_DIR` when set; without either the
//! server runs memory-only. `--metrics-file` periodically dumps the
//! Prometheus-style metrics exposition to PATH (interval
//! `CAYMAN_METRICS_INTERVAL_MS`, default 2000) for scrape-less setups —
//! the same text `Request::Metrics` serves. The slow-request log is
//! controlled by `CAYMAN_SLOW_REQ_MS`, the per-connection idle timeout by
//! `CAYMAN_REQ_TIMEOUT_MS`. The process exits on a SHUTDOWN request
//! (`Client::shutdown_server`). Tracing flows through the usual
//! `CAYMAN_TRACE` / `CAYMAN_OBS_*` environment sinks.

use cayman::SelectOptions;
use cayman_store::{serve, Endpoint, ServerOptions, STORE_DIR_ENV};
use std::path::PathBuf;

fn usage() -> ! {
    eprintln!(
        "usage: caymand (--unix PATH | --tcp ADDR) [--store DIR] [--threads N] \
         [--max-frameworks N] [--metrics-file PATH]"
    );
    std::process::exit(2);
}

fn main() {
    cayman_obs::init_from_env();
    let mut endpoint = None;
    let mut opts = ServerOptions {
        store_dir: std::env::var_os(STORE_DIR_ENV).map(PathBuf::from),
        ..Default::default()
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |what: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("{arg} expects {what}");
                usage()
            })
        };
        match arg.as_str() {
            "--unix" => endpoint = Some(Endpoint::Unix(PathBuf::from(value("a socket path")))),
            "--tcp" => endpoint = Some(Endpoint::Tcp(value("an address"))),
            "--store" => opts.store_dir = Some(PathBuf::from(value("a directory"))),
            "--threads" => {
                opts.select = SelectOptions {
                    threads: value("a count").parse().unwrap_or_else(|_| usage()),
                    ..opts.select
                }
            }
            "--max-frameworks" => {
                opts.max_frameworks = value("a count").parse().unwrap_or_else(|_| usage())
            }
            "--metrics-file" => opts.metrics_file = Some(PathBuf::from(value("a file path"))),
            _ => usage(),
        }
    }
    let Some(endpoint) = endpoint else { usage() };

    let handle = match serve(endpoint, opts) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("caymand: failed to start: {e}");
            std::process::exit(1);
        }
    };
    println!("caymand listening on {}", handle.endpoint());
    match handle.store() {
        Some(store) => println!("caymand store: {}", store.dir().display()),
        None => println!("caymand store: none (memory-only)"),
    }
    handle.wait();
    for (kind, path) in cayman_obs::flush_to_env() {
        eprintln!("{kind}: wrote {path}");
    }
    println!("caymand: shut down");
}
