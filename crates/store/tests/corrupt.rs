//! On-disk corruption tolerance (ISSUE 9 satellite): truncating or
//! bit-flipping a persisted entry yields a clean miss — never a panic,
//! never a wrong front — bumps the store's `corrupt` counter *and* the
//! `store.corrupt` obs counter, unlinks the bad entry, and leaves the
//! store fully usable afterwards.

use cayman_hls::design::AcceleratorDesign;
use cayman_hls::inputs::CandidateKey;
use cayman_hls::interface::{InterfaceKind, InterfaceSpec};
use cayman_ir::loops::LoopId;
use cayman_ir::{BlockId, FuncId, InstrId};
use cayman_select::cache::{DesignKey, ModelId};
use cayman_store::codec::VERSION;
use cayman_store::{DiskStore, StoreOptions};
use std::fs;
use std::path::{Path, PathBuf};

fn tmp_store_dir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("cayman-store-corrupt-{}-{tag}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn sample_key(seed: u64) -> DesignKey {
    DesignKey {
        model: ModelId {
            name: "cayman",
            options: seed,
        },
        candidate: CandidateKey {
            func: FuncId(seed as u32 % 7),
            content_fp: seed.wrapping_mul(0x9E37_79B9_7F4A_7C15),
            blocks: vec![BlockId(1), BlockId(2), BlockId(seed as u32 % 5)],
            entries: 100 + seed,
            cpu_cycles: 4096 + seed,
            is_bb: seed.is_multiple_of(2),
        },
    }
}

fn sample_designs(seed: u64) -> Vec<AcceleratorDesign> {
    vec![AcceleratorDesign {
        func: FuncId(seed as u32 % 7),
        blocks: vec![BlockId(1), BlockId(2)],
        unroll: 1 + (seed as u32 % 8),
        pipelined: vec![LoopId(0)],
        pipelined_detail: vec![(LoopId(0), vec![BlockId(1)], 2)],
        interfaces: vec![(
            InstrId(3),
            InterfaceSpec {
                kind: InterfaceKind::BankedScratchpad,
                banks: 4,
                depth: 64,
                ports: 2,
            },
        )],
        seq_blocks: 2,
        accel_cycles_total: 123.5 + seed as f64,
        area: 0.25 * seed as f64,
        cpu_cycles: 4096 + seed,
        entries: 100 + seed,
    }]
}

/// The single `.cyd` entry file under `dir` (panics unless exactly one).
fn only_entry(dir: &Path) -> PathBuf {
    let mut found = Vec::new();
    for shard in fs::read_dir(dir.join("objects"))
        .expect("objects dir")
        .flatten()
    {
        for f in fs::read_dir(shard.path()).expect("shard dir").flatten() {
            if f.path().extension().is_some_and(|e| e == "cyd") {
                found.push(f.path());
            }
        }
    }
    assert_eq!(found.len(), 1, "expected exactly one entry, got {found:?}");
    found.pop().expect("one entry")
}

#[test]
fn truncated_entry_is_a_clean_miss_and_is_unlinked() {
    let dir = tmp_store_dir("truncate");
    let store = DiskStore::open(&dir).expect("open");
    let (key, designs) = (sample_key(1), sample_designs(1));
    store.save(&key, &designs);
    assert!(store.load(&key).is_some(), "sanity: clean entry loads");

    let path = only_entry(&dir);
    let bytes = fs::read(&path).expect("read entry");
    fs::write(&path, &bytes[..bytes.len() / 2]).expect("truncate entry");

    assert!(store.load(&key).is_none(), "truncated entry must miss");
    let stats = store.stats();
    assert_eq!(stats.corrupt, 1, "truncation counted as corrupt");
    assert!(!path.exists(), "bad entry unlinked for re-persist");

    // the store heals: re-save, reload
    store.save(&key, &designs);
    assert!(store.load(&key).is_some(), "store usable after corruption");
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn bit_flipped_entry_is_a_clean_miss_with_obs_counter() {
    let dir = tmp_store_dir("bitflip");
    let store = DiskStore::open(&dir).expect("open");
    let (key, designs) = (sample_key(2), sample_designs(2));
    store.save(&key, &designs);

    let path = only_entry(&dir);
    let mut bytes = fs::read(&path).expect("read entry");
    // flip one bit deep in the payload (past magic/version/key header)
    let victim = bytes.len() * 3 / 4;
    bytes[victim] ^= 0x10;
    fs::write(&path, &bytes).expect("write flipped entry");

    cayman_obs::enable();
    let loaded = store.load(&key);
    let trace = cayman_obs::drain();
    cayman_obs::disable();

    assert!(
        loaded.is_none(),
        "bit-flipped entry must miss, never decode"
    );
    assert_eq!(store.stats().corrupt, 1);
    assert_eq!(store.stats().hits, 0);
    let corrupt_events: u64 = trace
        .events
        .iter()
        .filter_map(|e| match e.kind {
            cayman_obs::EventKind::Counter { delta } if e.name.to_string() == "store.corrupt" => {
                Some(delta)
            }
            _ => None,
        })
        .sum();
    assert!(
        corrupt_events >= 1,
        "store.corrupt obs counter must fire on corruption"
    );
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn version_skewed_entry_is_dropped_not_decoded() {
    let dir = tmp_store_dir("version");
    let store = DiskStore::open(&dir).expect("open");
    let (key, designs) = (sample_key(3), sample_designs(3));
    store.save(&key, &designs);

    let path = only_entry(&dir);
    let mut bytes = fs::read(&path).expect("read entry");
    bytes[4] = VERSION + 1; // byte 4 is the format version (after "CYDS")
    fs::write(&path, &bytes).expect("write skewed entry");

    assert!(store.load(&key).is_none(), "future-version entry must miss");
    let stats = store.stats();
    assert_eq!(stats.version_skew, 1);
    assert_eq!(stats.corrupt, 0, "version skew is not corruption");
    assert!(!path.exists(), "skewed entry unlinked for re-persist");
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn garbage_and_empty_files_never_panic() {
    let dir = tmp_store_dir("garbage");
    let store = DiskStore::open(&dir).expect("open");
    let (key, designs) = (sample_key(4), sample_designs(4));
    store.save(&key, &designs);
    let path = only_entry(&dir);

    for garbage in [&b""[..], b"CY", b"CYDSnonsense", &[0xFFu8; 64][..]] {
        fs::write(&path, garbage).expect("write garbage");
        assert!(store.load(&key).is_none(), "garbage must be a clean miss");
        store.save(&key, &designs); // re-persist for the next round
    }
    assert_eq!(store.stats().corrupt as usize, 4);
    assert!(
        store.load(&key).is_some(),
        "store healthy after the gauntlet"
    );
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn eviction_sweep_bounds_store_size() {
    let dir = tmp_store_dir("evict");
    let store = DiskStore::open_with(
        &dir,
        StoreOptions {
            max_bytes: 2048,
            sweep_every: 8,
        },
    )
    .expect("open");
    for seed in 0..64 {
        store.save(&sample_key(seed), &sample_designs(seed));
    }
    store.sweep();
    assert!(
        store.total_bytes() <= 2048,
        "sweep must bound the store to max_bytes, got {}",
        store.total_bytes()
    );
    assert!(store.stats().evictions > 0, "over-full store must evict");
    assert!(store.entry_count() > 0, "eviction keeps the newest entries");
    let _ = fs::remove_dir_all(&dir);
}
