//! Serialization round-trip property tests (ISSUE 9 satellite): for
//! randomly generated keys, design vectors and Pareto fronts,
//! `decode(encode(x))` is **bit-identical** to `x` — including NaN
//! payloads, infinities and signed zeros drawn from raw bit patterns —
//! and any single corrupted byte fails closed. Failures shrink to a
//! minimal case via the `prop_check!` harness.

use cayman_analysis::wpst::WpstNodeId;
use cayman_hls::design::AcceleratorDesign;
use cayman_hls::inputs::CandidateKey;
use cayman_hls::interface::{InterfaceKind, InterfaceSpec};
use cayman_ir::loops::LoopId;
use cayman_ir::{BlockId, FuncId, InstrId};
use cayman_select::cache::{DesignKey, ModelId};
use cayman_select::{SelectedKernel, Solution};
use cayman_store::codec::{
    decode_entry, decode_front, designs_bits_equal, encode_entry, encode_front, fronts_bits_equal,
    key_bytes, Dec, Enc,
};
use cayman_testkit::{prop_assert, prop_check, Rng};

const KINDS: [InterfaceKind; 6] = [
    InterfaceKind::Coupled,
    InterfaceKind::Decoupled,
    InterfaceKind::Scratchpad,
    InterfaceKind::BankedScratchpad,
    InterfaceKind::DoubleBuffered,
    InterfaceKind::LineBuffer,
];

/// Any `f64` bit pattern: finite values, ±0, ±∞, NaNs with payloads.
fn gen_f64(rng: &mut Rng) -> f64 {
    if rng.bool() {
        rng.range_f64(-1e12, 1e12)
    } else {
        f64::from_bits(rng.next_u64())
    }
}

fn gen_key(rng: &mut Rng) -> DesignKey {
    DesignKey {
        model: ModelId {
            name: ["cayman", "novia", "qscores"][rng.range_usize(0, 3)],
            options: rng.next_u64(),
        },
        candidate: CandidateKey {
            func: FuncId(rng.range_u32(0, 16)),
            content_fp: rng.next_u64(),
            blocks: (0..rng.range_usize(0, 8))
                .map(|_| BlockId(rng.range_u32(0, 128)))
                .collect(),
            entries: rng.next_u64(),
            cpu_cycles: rng.next_u64(),
            is_bb: rng.bool(),
        },
    }
}

fn gen_design(rng: &mut Rng) -> AcceleratorDesign {
    AcceleratorDesign {
        func: FuncId(rng.range_u32(0, 16)),
        blocks: (0..rng.range_usize(0, 8))
            .map(|_| BlockId(rng.range_u32(0, 128)))
            .collect(),
        unroll: rng.range_u32(1, 16),
        pipelined: (0..rng.range_usize(0, 4))
            .map(|_| LoopId(rng.range_u32(0, 32)))
            .collect(),
        pipelined_detail: (0..rng.range_usize(0, 3))
            .map(|_| {
                (
                    LoopId(rng.range_u32(0, 32)),
                    (0..rng.range_usize(0, 4))
                        .map(|_| BlockId(rng.range_u32(0, 128)))
                        .collect(),
                    rng.range_u32(1, 16),
                )
            })
            .collect(),
        interfaces: (0..rng.range_usize(0, 6))
            .map(|_| {
                (
                    InstrId(rng.range_u32(0, 512)),
                    InterfaceSpec {
                        kind: *rng.choose(&KINDS),
                        banks: rng.range_u32(1, 64) as u16,
                        depth: rng.range_u32(1, 64) as u16,
                        ports: rng.range_u32(1, 8) as u16,
                    },
                )
            })
            .collect(),
        seq_blocks: rng.range_usize(0, 32),
        accel_cycles_total: gen_f64(rng),
        area: gen_f64(rng),
        cpu_cycles: rng.next_u64(),
        entries: rng.next_u64(),
    }
}

fn gen_designs(rng: &mut Rng) -> Vec<AcceleratorDesign> {
    (0..rng.range_usize(0, 6))
        .map(|_| gen_design(rng))
        .collect()
}

fn gen_front(rng: &mut Rng) -> Vec<Solution> {
    (0..rng.range_usize(0, 5))
        .map(|_| Solution {
            kernels: (0..rng.range_usize(0, 4))
                .map(|_| SelectedKernel {
                    node: WpstNodeId(rng.range_u32(0, 256)),
                    design: gen_design(rng),
                })
                .collect(),
            area: gen_f64(rng),
            saved_seconds: gen_f64(rng),
        })
        .collect()
}

#[test]
fn prop_entry_roundtrip_is_bit_identical() {
    prop_check!(cases = 128, |rng| {
        let key = gen_key(rng);
        let designs = gen_designs(rng);
        let bytes = encode_entry(&key, &designs);
        let decoded = match decode_entry(&bytes, &key_bytes(&key)) {
            Ok(d) => d,
            Err(e) => return Err(format!("decode failed: {e}")),
        };
        prop_assert!(
            designs_bits_equal(&decoded, &designs),
            "decode(encode(designs)) not bit-identical ({} designs)",
            designs.len()
        );
        // determinism: encoding is a pure function of the value
        prop_assert!(bytes == encode_entry(&key, &designs));
        Ok(())
    });
}

#[test]
fn prop_front_roundtrip_is_bit_identical() {
    prop_check!(cases = 128, |rng| {
        let front = gen_front(rng);
        let mut e = Enc::new();
        encode_front(&mut e, &front);
        let bytes = e.finish();
        let decoded = match decode_front(&mut Dec::new(&bytes)) {
            Ok(f) => f,
            Err(e) => return Err(format!("decode failed: {e}")),
        };
        prop_assert!(
            fronts_bits_equal(&decoded, &front),
            "decode(encode(front)) not bit-identical ({} solutions)",
            front.len()
        );
        Ok(())
    });
}

#[test]
fn prop_any_single_byte_corruption_fails_closed() {
    prop_check!(cases = 128, |rng| {
        let key = gen_key(rng);
        let designs = gen_designs(rng);
        let mut bytes = encode_entry(&key, &designs);
        let victim = rng.range_usize(0, bytes.len() - 1);
        let flip = 1u8 << rng.range_u32(0, 7);
        bytes[victim] ^= flip;
        prop_assert!(
            decode_entry(&bytes, &key_bytes(&key)).is_err(),
            "flipping bit {flip:#x} of byte {victim}/{} decoded successfully",
            bytes.len()
        );
        Ok(())
    });
}

#[test]
fn prop_differing_keys_never_alias() {
    prop_check!(cases = 128, |rng| {
        let a = gen_key(rng);
        let b = gen_key(rng);
        if a == b {
            return Ok(()); // astronomically unlikely; nothing to test
        }
        prop_assert!(
            key_bytes(&a) != key_bytes(&b),
            "distinct keys encoded to identical canonical bytes"
        );
        let bytes = encode_entry(&a, &gen_designs(rng));
        prop_assert!(
            decode_entry(&bytes, &key_bytes(&b)).is_err(),
            "entry for one key decoded under another"
        );
        Ok(())
    });
}
