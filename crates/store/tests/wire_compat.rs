//! Wire-protocol compatibility (ISSUE 10 satellite): the request-id
//! trailer is **strictly additive**. Frames produced by the pre-telemetry
//! protocol — pinned here as raw bytes, not via today's encoder — must
//! still decode and get served, and a pre-telemetry *reader* must be able
//! to consume today's responses by ignoring the trailer.

use cayman_store::server::{serve, Endpoint, ServerOptions};
use cayman_store::wire::{self, Request, Response};

/// A pre-telemetry request payload, byte for byte: `version=1, opcode`
/// (plus a length-prefixed module text for SELECT). The request format is
/// unchanged by the telemetry work, which this test pins.
fn old_request_frame(opcode: u8, body: Option<&str>) -> Vec<u8> {
    let mut payload = vec![1u8, opcode];
    if let Some(text) = body {
        payload.extend_from_slice(&(text.len() as u32).to_le_bytes());
        payload.extend_from_slice(text.as_bytes());
    }
    payload
}

#[test]
fn old_request_frames_still_decode() {
    assert_eq!(
        wire::decode_request(&old_request_frame(2, None)).unwrap(),
        Request::Stats
    );
    assert_eq!(
        wire::decode_request(&old_request_frame(3, None)).unwrap(),
        Request::Ping
    );
    assert_eq!(
        wire::decode_request(&old_request_frame(4, None)).unwrap(),
        Request::Shutdown
    );
    assert_eq!(
        wire::decode_request(&old_request_frame(1, Some("func @f() {}"))).unwrap(),
        Request::Select {
            module_text: "func @f() {}".into(),
        }
    );
}

#[test]
fn old_clients_are_served_end_to_end() {
    let sock = std::env::temp_dir().join(format!("cayman-wirecompat-{}.sock", std::process::id()));
    let server = serve(Endpoint::Unix(sock), ServerOptions::default()).expect("server starts");

    // speak the old protocol by hand: raw frames, no Client
    let mut stream = server.endpoint().connect().expect("connects");
    wire::write_frame(&mut stream, &old_request_frame(3, None)).expect("writes PING");
    let payload = wire::read_frame(&mut stream)
        .expect("reads")
        .expect("server replied");

    // an old reader parses the body and ignores whatever follows — which
    // is exactly what decode_response always did; emulate it by checking
    // the raw body bytes directly: version, STATUS_OK, BODY_PONG, then
    // the (to an old reader, opaque) 8-byte trailer
    assert_eq!(&payload[..3], &[1u8, 0, 3], "old reader sees a plain PONG");
    assert_eq!(payload.len(), 3 + 8, "new frames only append the trailer");

    // today's decoder on the same bytes reads the id
    let decoded = wire::decode_response(&payload).expect("decodes");
    assert!(matches!(decoded.response, Response::Pong));
    assert_eq!(decoded.request_id, 1, "first request gets id 1");

    // an old STATS round-trip on the same connection still works too
    wire::write_frame(&mut stream, &old_request_frame(2, None)).expect("writes STATS");
    let payload = wire::read_frame(&mut stream)
        .expect("reads")
        .expect("server replied");
    match wire::decode_response(&payload).expect("decodes").response {
        Response::Stats(r) => assert!(r.requests >= 2, "server served both old-style requests"),
        other => panic!("wrong body: {other:?}"),
    }

    wire::write_frame(&mut stream, &old_request_frame(4, None)).expect("writes SHUTDOWN");
    let payload = wire::read_frame(&mut stream)
        .expect("reads")
        .expect("server acknowledged");
    assert!(matches!(
        wire::decode_response(&payload).expect("decodes").response,
        Response::ShuttingDown
    ));
    server.wait();
}
