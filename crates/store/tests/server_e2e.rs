//! End-to-end server tests: Unix and TCP endpoints, request batching onto
//! shared warm frameworks, concurrent clients receiving bit-identical
//! fronts, error replies for malformed modules, stats, and clean shutdown.

use cayman::{Framework, SelectOptions};
use cayman_store::{fronts_bits_equal, serve, Client, Endpoint, ServerOptions};
use std::path::PathBuf;

fn tmp_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("cayman-e2e-{}-{tag}", std::process::id()))
}

fn corpus_text(i: usize) -> (String, &'static str) {
    let corpus = cayman::workloads::corpus::corpus();
    let w = &corpus[i % corpus.len()];
    (w.module.to_text(), w.name)
}

#[test]
fn unix_server_serves_bit_identical_fronts_and_batches() {
    let sock = tmp_path("unix.sock");
    let server = serve(Endpoint::Unix(sock), ServerOptions::default()).expect("serve");
    let mut client = Client::connect(server.endpoint()).expect("connect");
    client.ping().expect("ping");

    let (text, name) = corpus_text(0);
    let reference = Framework::from_text(&text)
        .expect("analyses")
        .select(&SelectOptions::default());

    let cold = client.select_text(&text).expect("cold select");
    assert!(
        fronts_bits_equal(&cold.front, &reference.pareto),
        "{name}: served front diverges from in-process selection"
    );
    assert!(!cold.framework_reused);
    assert!(cold.model_evals > 0);

    // a second connection batches onto the same warm framework
    let mut other = Client::connect(server.endpoint()).expect("second connect");
    let warm = other.select_text(&text).expect("warm select");
    assert!(warm.framework_reused, "identical text reuses the framework");
    assert_eq!(warm.model_evals, 0, "warm request skips the model");
    assert!(fronts_bits_equal(&warm.front, &reference.pareto));

    let stats = client.stats().expect("stats");
    assert!(stats.requests >= 3);
    assert_eq!(stats.fw_cached, 1);
    assert_eq!(stats.fw_hits, 1);
    assert_eq!(stats.fw_misses, 1);
    assert!(stats.store.is_none(), "no store attached by default");

    client.shutdown_server().expect("shutdown");
    server.wait();
}

#[test]
fn tcp_server_roundtrips() {
    let server = serve(
        Endpoint::Tcp("127.0.0.1:0".into()),
        ServerOptions::default(),
    )
    .expect("serve tcp");
    let Endpoint::Tcp(addr) = server.endpoint() else {
        panic!("tcp endpoint expected");
    };
    assert!(!addr.ends_with(":0"), "port 0 must resolve, got {addr}");

    let mut client = Client::connect(server.endpoint()).expect("connect");
    client.ping().expect("ping");
    let (text, name) = corpus_text(1);
    let reference = Framework::from_text(&text)
        .expect("analyses")
        .select(&SelectOptions::default());
    let reply = client.select_text(&text).expect("select");
    assert!(
        fronts_bits_equal(&reply.front, &reference.pareto),
        "{name}: tcp-served front diverges"
    );
    client.shutdown_server().expect("shutdown");
    server.wait();
}

#[test]
fn concurrent_clients_get_bit_identical_fronts() {
    let sock = tmp_path("concurrent.sock");
    let server = serve(Endpoint::Unix(sock), ServerOptions::default()).expect("serve");
    let (text, name) = corpus_text(2);
    let reference = Framework::from_text(&text)
        .expect("analyses")
        .select(&SelectOptions::default());

    let fronts: Vec<_> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let endpoint = server.endpoint().clone();
                let text = &text;
                s.spawn(move || {
                    let mut c = Client::connect(&endpoint).expect("connect");
                    c.select_text(text).expect("select").front
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("join"))
            .collect()
    });
    for front in &fronts {
        assert!(
            fronts_bits_equal(front, &reference.pareto),
            "{name}: a concurrent client saw a diverging front"
        );
    }
    // 4 clients, identical text: exactly one analysis happened
    let mut client = Client::connect(server.endpoint()).expect("connect");
    let stats = client.stats().expect("stats");
    assert_eq!(stats.fw_misses, 1, "identical text analyses exactly once");
    client.shutdown_server().expect("shutdown");
    server.wait();
}

#[test]
fn malformed_module_gets_an_error_reply_not_a_dead_server() {
    let sock = tmp_path("err.sock");
    let server = serve(Endpoint::Unix(sock), ServerOptions::default()).expect("serve");
    let mut client = Client::connect(server.endpoint()).expect("connect");

    let err = client
        .select_text("this is not a cir module")
        .expect_err("garbage must be rejected");
    let msg = err.to_string();
    assert!(!msg.is_empty(), "error reply carries a message");

    // the connection (and server) survive an application-level error
    client.ping().expect("server alive after error reply");
    let (text, _) = corpus_text(3);
    client
        .select_text(&text)
        .expect("still serves good modules");
    client.shutdown_server().expect("shutdown");
    server.wait();
}

#[test]
fn stop_terminates_without_a_client() {
    let sock = tmp_path("stop.sock");
    let server = serve(Endpoint::Unix(sock.clone()), ServerOptions::default()).expect("serve");
    server.stop();
    assert!(!sock.exists(), "unix socket file removed on exit");
}
