//! End-to-end server tests: Unix and TCP endpoints, request batching onto
//! shared warm frameworks, concurrent clients receiving bit-identical
//! fronts, error replies for malformed modules, stats, and clean shutdown.

use cayman::{Framework, SelectOptions};
use cayman_store::{fronts_bits_equal, serve, Client, Endpoint, ServerOptions};
use std::path::PathBuf;

fn tmp_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("cayman-e2e-{}-{tag}", std::process::id()))
}

fn corpus_text(i: usize) -> (String, &'static str) {
    let corpus = cayman::workloads::corpus::corpus();
    let w = &corpus[i % corpus.len()];
    (w.module.to_text(), w.name)
}

#[test]
fn unix_server_serves_bit_identical_fronts_and_batches() {
    let sock = tmp_path("unix.sock");
    let server = serve(Endpoint::Unix(sock), ServerOptions::default()).expect("serve");
    let mut client = Client::connect(server.endpoint()).expect("connect");
    client.ping().expect("ping");

    let (text, name) = corpus_text(0);
    let reference = Framework::from_text(&text)
        .expect("analyses")
        .select(&SelectOptions::default());

    let cold = client.select_text(&text).expect("cold select");
    assert!(
        fronts_bits_equal(&cold.front, &reference.pareto),
        "{name}: served front diverges from in-process selection"
    );
    assert!(!cold.framework_reused);
    assert!(cold.model_evals > 0);

    // a second connection batches onto the same warm framework
    let mut other = Client::connect(server.endpoint()).expect("second connect");
    let warm = other.select_text(&text).expect("warm select");
    assert!(warm.framework_reused, "identical text reuses the framework");
    assert_eq!(warm.model_evals, 0, "warm request skips the model");
    assert!(fronts_bits_equal(&warm.front, &reference.pareto));

    let stats = client.stats().expect("stats");
    assert!(stats.requests >= 3);
    assert_eq!(stats.fw_cached, 1);
    assert_eq!(stats.fw_hits, 1);
    assert_eq!(stats.fw_misses, 1);
    assert!(stats.store.is_none(), "no store attached by default");

    client.shutdown_server().expect("shutdown");
    server.wait();
}

#[test]
fn tcp_server_roundtrips() {
    let server = serve(
        Endpoint::Tcp("127.0.0.1:0".into()),
        ServerOptions::default(),
    )
    .expect("serve tcp");
    let Endpoint::Tcp(addr) = server.endpoint() else {
        panic!("tcp endpoint expected");
    };
    assert!(!addr.ends_with(":0"), "port 0 must resolve, got {addr}");

    let mut client = Client::connect(server.endpoint()).expect("connect");
    client.ping().expect("ping");
    let (text, name) = corpus_text(1);
    let reference = Framework::from_text(&text)
        .expect("analyses")
        .select(&SelectOptions::default());
    let reply = client.select_text(&text).expect("select");
    assert!(
        fronts_bits_equal(&reply.front, &reference.pareto),
        "{name}: tcp-served front diverges"
    );
    client.shutdown_server().expect("shutdown");
    server.wait();
}

#[test]
fn concurrent_clients_get_bit_identical_fronts() {
    let sock = tmp_path("concurrent.sock");
    let server = serve(Endpoint::Unix(sock), ServerOptions::default()).expect("serve");
    let (text, name) = corpus_text(2);
    let reference = Framework::from_text(&text)
        .expect("analyses")
        .select(&SelectOptions::default());

    let fronts: Vec<_> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let endpoint = server.endpoint().clone();
                let text = &text;
                s.spawn(move || {
                    let mut c = Client::connect(&endpoint).expect("connect");
                    c.select_text(text).expect("select").front
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("join"))
            .collect()
    });
    for front in &fronts {
        assert!(
            fronts_bits_equal(front, &reference.pareto),
            "{name}: a concurrent client saw a diverging front"
        );
    }
    // 4 clients, identical text: they end up sharing ONE warm framework.
    // Racing connections may each count a miss before the first insert
    // lands, so the miss counter is >= 1, not exactly 1; the cache-size
    // and hit counters pin the actual batching guarantee.
    let mut client = Client::connect(server.endpoint()).expect("connect");
    let stats = client.stats().expect("stats");
    assert_eq!(stats.fw_cached, 1, "identical text shares one framework");
    assert!(
        stats.fw_misses >= 1 && stats.fw_misses <= 4,
        "between one and one-per-client misses, got {}",
        stats.fw_misses
    );
    assert_eq!(
        stats.fw_hits + stats.fw_misses,
        4,
        "every select either hit or missed the framework cache"
    );
    client.shutdown_server().expect("shutdown");
    server.wait();
}

#[test]
fn malformed_module_gets_an_error_reply_not_a_dead_server() {
    let sock = tmp_path("err.sock");
    let server = serve(Endpoint::Unix(sock), ServerOptions::default()).expect("serve");
    let mut client = Client::connect(server.endpoint()).expect("connect");

    let err = client
        .select_text("this is not a cir module")
        .expect_err("garbage must be rejected");
    let msg = err.to_string();
    assert!(!msg.is_empty(), "error reply carries a message");

    // the connection (and server) survive an application-level error
    client.ping().expect("server alive after error reply");
    let (text, _) = corpus_text(3);
    client
        .select_text(&text)
        .expect("still serves good modules");
    client.shutdown_server().expect("shutdown");
    server.wait();
}

#[test]
fn stop_terminates_without_a_client() {
    let sock = tmp_path("stop.sock");
    let server = serve(Endpoint::Unix(sock.clone()), ServerOptions::default()).expect("serve");
    server.stop();
    assert!(!sock.exists(), "unix socket file removed on exit");
}

#[test]
fn health_and_metrics_roundtrip_with_request_ids() {
    let sock = tmp_path("telemetry.sock");
    let server = serve(Endpoint::Unix(sock), ServerOptions::default()).expect("serve");
    let mut client = Client::connect(server.endpoint()).expect("connect");

    client.ping().expect("ping");
    let first_id = client.last_request_id();
    assert!(first_id >= 1, "reply carries a server-assigned id");

    let health = client.health().expect("health");
    assert!(health.healthy);
    assert!(health.uptime_nanos > 0);
    assert!(health.requests >= 2);
    assert_eq!(health.request_id, first_id + 1, "ids are a sequence");

    let (text, _) = corpus_text(4);
    client.select_text(&text).expect("select");

    let metrics = client.metrics().expect("metrics");
    assert_eq!(metrics.request_id, client.last_request_id());
    let exp = cayman_obs::promtext::validate(&metrics.text).expect("exposition validates");
    // the per-phase histograms are registered and populated (process-global
    // registry: other tests in this process only ever add to the counts)
    for phase in ["decode", "warm", "select", "encode", "total"] {
        let count = exp
            .value(&format!("cayman_req_{phase}_nanos_count"))
            .unwrap_or_else(|| panic!("missing {phase} histogram"));
        assert!(count >= 1.0, "{phase} histogram saw this test's requests");
    }
    assert!(exp.value("cayman_server_requests").unwrap_or(0.0) >= 4.0);

    // the in-process view matches what the wire serves (modulo counters
    // that moved between the two calls)
    let local = server.metrics_text();
    assert!(local.contains("cayman_req_total_nanos_count"));

    client.shutdown_server().expect("shutdown");
    server.wait();
}

#[test]
fn idle_connection_times_out_and_server_survives() {
    let sock = tmp_path("timeout.sock");
    let server = serve(
        Endpoint::Unix(sock),
        ServerOptions {
            req_timeout_ms: Some(60),
            ..Default::default()
        },
    )
    .expect("serve");

    // an idle client is dropped once the read timeout fires
    let mut idle = Client::connect(server.endpoint()).expect("connect idle");
    idle.ping().expect("live before the timeout");
    std::thread::sleep(std::time::Duration::from_millis(250));
    assert!(
        idle.ping().is_err(),
        "idle connection must be closed by the server"
    );

    // the server itself is unharmed and counts the timeout
    let mut fresh = Client::connect(server.endpoint()).expect("connect fresh");
    fresh.ping().expect("server alive after dropping an idler");
    let metrics = fresh.metrics().expect("metrics");
    let exp = cayman_obs::promtext::validate(&metrics.text).expect("validates");
    assert!(
        exp.value("cayman_server_timeout").unwrap_or(0.0) >= 1.0,
        "timeout counter exported"
    );

    fresh.shutdown_server().expect("shutdown");
    server.wait();
}

#[test]
fn slow_request_log_names_reply_ids() {
    let sock = tmp_path("slowlog.sock");
    let server = serve(
        Endpoint::Unix(sock),
        ServerOptions {
            slow_req_ms: Some(0), // every request is "slow"
            ..Default::default()
        },
    )
    .expect("serve");
    let mut client = Client::connect(server.endpoint()).expect("connect");
    let (text, _) = corpus_text(5);
    let reply = client.select_text(&text).expect("select");

    let slow = server.slow_log();
    let line = slow
        .iter()
        .find(|l| l.contains(&format!("id={} ", reply.request_id)))
        .expect("the select's reply id appears in the slow log");
    assert!(line.starts_with("slow-req id="), "stable format: {line}");
    assert!(line.contains("op=select"), "op recorded: {line}");
    assert!(line.contains("total_us="), "total recorded: {line}");

    client.shutdown_server().expect("shutdown");
    server.wait();
}
