//! The two-level cache end to end: a `Framework` backed by a `DiskStore`
//! persists every cold `accel(v, R)` evaluation, and a *fresh* framework
//! (empty memory cache) over the same store serves the **bit-identical**
//! Pareto front with **zero** model evaluations — the ISSUE 9 acceptance
//! gate, asserted on every one of the 132 registry kernels.

use cayman::{Framework, SelectOptions};
use cayman_store::{fronts_bits_equal, DiskStore};
use std::path::PathBuf;
use std::sync::Arc;

fn tmp_store_dir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("cayman-store-tiered-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn disk_warm_framework_runs_zero_model_evals() {
    let dir = tmp_store_dir("single");
    let store = Arc::new(DiskStore::open(&dir).expect("open store"));
    let w = &cayman::workloads::corpus::corpus()[0];
    let opts = SelectOptions::default();

    let mut cold_fw = Framework::from_workload(w).expect("analyse");
    cold_fw.set_design_store(Arc::clone(&store) as _);
    let cold = cold_fw.select(&opts);
    assert!(cold.stats.configs_evaluated > 0, "cold run models designs");
    assert!(store.stats().writes > 0, "cold run persists designs");

    let mut warm_fw = Framework::from_workload(w).expect("re-analyse");
    warm_fw.set_design_store(Arc::clone(&store) as _);
    let warm = warm_fw.select(&opts);
    assert!(
        fronts_bits_equal(&warm.pareto, &cold.pareto),
        "{}: disk-warm front diverges from cold front",
        w.name
    );
    assert_eq!(
        warm.stats.configs_evaluated, 0,
        "disk-warm selection must never re-run the model"
    );
    assert!(
        warm_fw.cache_stats().disk_hits > 0,
        "warm designs must come off disk"
    );
    assert_eq!(store.stats().corrupt, 0);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn store_is_shared_across_frameworks_not_cleared_by_cache_clear() {
    let dir = tmp_store_dir("shared");
    let store = Arc::new(DiskStore::open(&dir).expect("open store"));
    let w = &cayman::workloads::corpus::corpus()[1];
    let opts = SelectOptions::default();

    let mut fw = Framework::from_workload(w).expect("analyse");
    fw.set_design_store(Arc::clone(&store) as _);
    let cold = fw.select(&opts);
    let persisted = store.entry_count();
    assert!(persisted > 0);

    // clearing the in-memory cache must not clear the shared store
    fw.clear_design_cache();
    assert_eq!(store.entry_count(), persisted, "clear() keeps the store");
    let reheat = fw.select(&opts);
    assert!(fronts_bits_equal(&reheat.pareto, &cold.pareto));
    assert_eq!(
        reheat.stats.configs_evaluated, 0,
        "after clear(), designs reload from disk instead of re-modelling"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// ISSUE 9 acceptance: fronts served from the on-disk store are
/// bit-identical to freshly computed fronts on **all 132** registry
/// kernels, with zero model evaluations disk-warm.
#[test]
fn disk_fronts_bit_identical_on_all_132_kernels() {
    let dir = tmp_store_dir("full132");
    let store = Arc::new(DiskStore::open(&dir).expect("open store"));
    let opts = SelectOptions::default();
    let workloads = cayman::workloads::full();
    assert_eq!(
        workloads.len(),
        132,
        "expected the full 132-kernel registry"
    );

    let mut warm_evals = 0usize;
    for w in &workloads {
        let mut cold_fw = Framework::from_workload(w).expect("analyse");
        cold_fw.set_design_store(Arc::clone(&store) as _);
        let cold = cold_fw.select(&opts);

        let mut warm_fw = Framework::from_workload(w).expect("re-analyse");
        warm_fw.set_design_store(Arc::clone(&store) as _);
        let warm = warm_fw.select(&opts);

        assert!(
            fronts_bits_equal(&warm.pareto, &cold.pareto),
            "{}: disk-served front diverges from freshly computed front",
            w.name
        );
        warm_evals += warm.stats.configs_evaluated;
    }
    assert_eq!(
        warm_evals, 0,
        "disk-warm selection must run zero cold accel(v, R) evaluations"
    );
    assert_eq!(store.stats().corrupt, 0, "no corruption in a clean store");
    assert_eq!(store.stats().key_mismatches, 0, "no address collisions");
    let _ = std::fs::remove_dir_all(&dir);
}
