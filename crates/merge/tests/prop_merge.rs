//! Property-based tests of the merging cost model: area conservation,
//! symmetry, and the greedy loop's termination guarantees.

use cayman_hls::oplib::FuClass;
use cayman_merge::dfg::{merge_saving, merge_units, DatapathUnit};
use cayman_testkit::{prop_assert, prop_assert_eq, prop_check, Rng};
use std::collections::BTreeMap;

const CLASSES: [FuClass; 11] = [
    FuClass::IntAlu,
    FuClass::IntMul,
    FuClass::IntDiv,
    FuClass::FAdd,
    FuClass::FMul,
    FuClass::FDivSqrt,
    FuClass::FTrans,
    FuClass::Cvt,
    FuClass::Mem,
    FuClass::Reg,
    FuClass::AguFifo,
];

/// A random datapath unit: 1–5 distinct FU classes with 1–7 instances each.
fn gen_unit(rng: &mut Rng, kernel: usize) -> DatapathUnit {
    let mut classes = BTreeMap::new();
    for _ in 0..rng.range_usize(1, 6) {
        classes.insert(*rng.choose(&CLASSES), rng.range_u32(1, 8));
    }
    DatapathUnit {
        kernels: vec![kernel],
        classes,
        mux_area: 0.0,
    }
}

/// Area conservation: `merged.area() == a.area() + b.area() − saving`. The
/// selection layer's `area_after = area_before − Σ savings` is exact only if
/// this holds for every pairwise merge.
#[test]
fn merge_conserves_area() {
    prop_check!(|rng| {
        let a = gen_unit(rng, 0);
        let b = gen_unit(rng, 1);
        let saving = merge_saving(&a, &b);
        let m = merge_units(&a, &b);
        let expect = a.area() + b.area() - saving;
        prop_assert!(
            (m.area() - expect).abs() < 1e-6,
            "conservation violated: merged {} vs expected {expect}",
            m.area()
        );
        Ok(())
    });
}

/// Merging is symmetric in inventory, overhead and saving.
#[test]
fn merge_is_symmetric() {
    prop_check!(|rng| {
        let a = gen_unit(rng, 0);
        let b = gen_unit(rng, 1);
        let ab = merge_units(&a, &b);
        let ba = merge_units(&b, &a);
        prop_assert_eq!(&ab.classes, &ba.classes);
        prop_assert!((ab.mux_area - ba.mux_area).abs() < 1e-9);
        prop_assert!((merge_saving(&a, &b) - merge_saving(&b, &a)).abs() < 1e-9);
        Ok(())
    });
}

/// The merged unit implements both members: per-class FU count is the max of
/// the members' counts, and the kernel tag set is the union.
#[test]
fn merged_unit_covers_both_members() {
    prop_check!(|rng| {
        let a = gen_unit(rng, 0);
        let b = gen_unit(rng, 1);
        let m = merge_units(&a, &b);
        let all: BTreeMap<FuClass, u32> = a
            .classes
            .iter()
            .chain(b.classes.iter())
            .map(|(&c, _)| {
                let na = a.classes.get(&c).copied().unwrap_or(0);
                let nb = b.classes.get(&c).copied().unwrap_or(0);
                (c, na.max(nb))
            })
            .collect();
        prop_assert_eq!(&m.classes, &all);
        prop_assert_eq!(&m.kernels, &vec![0, 1]);
        Ok(())
    });
}

/// Saving is bounded by the smaller member's FU area (you can never save
/// more hardware than one side contributes) and the saving of a unit with
/// itself is its own FU area minus the sharing overhead (positive for any
/// FU-dominated unit).
#[test]
fn saving_bounds() {
    prop_check!(|rng| {
        let a = gen_unit(rng, 0);
        let b = gen_unit(rng, 1);
        let s = merge_saving(&a, &b);
        prop_assert!(s <= a.fu_area_total().min(b.fu_area_total()) + 1e-9);
        let mut b2 = a.clone();
        b2.kernels = vec![1];
        let self_saving = merge_saving(&a, &b2);
        prop_assert!(self_saving <= a.fu_area_total());
        Ok(())
    });
}

/// Chained merging never increases total area across the pool — the greedy
/// loop in `merge_solution` only applies positive-saving merges, so a random
/// positive-merge sequence must be monotonically shrinking.
#[test]
fn chained_merging_monotone() {
    prop_check!(|rng| {
        // distinct kernel tags, so every pair is mergeable
        let mut units: Vec<DatapathUnit> = (0..rng.range_usize(2, 6))
            .map(|i| gen_unit(rng, i))
            .collect();
        let mut total: f64 = units.iter().map(|u| u.area()).sum();
        loop {
            let mut best: Option<(usize, usize, f64)> = None;
            for i in 0..units.len() {
                for j in (i + 1)..units.len() {
                    if units[i]
                        .kernels
                        .iter()
                        .any(|k| units[j].kernels.contains(k))
                    {
                        continue;
                    }
                    let s = merge_saving(&units[i], &units[j]);
                    if s > 0.0 && best.map(|(_, _, bs)| s > bs).unwrap_or(true) {
                        best = Some((i, j, s));
                    }
                }
            }
            let Some((i, j, s)) = best else { break };
            let m = merge_units(&units[i], &units[j]);
            units.swap_remove(j);
            units.swap_remove(i);
            units.push(m);
            let new_total: f64 = units.iter().map(|u| u.area()).sum();
            prop_assert!((new_total - (total - s)).abs() < 1e-6);
            prop_assert!(new_total <= total);
            total = new_total;
        }
        Ok(())
    });
}
