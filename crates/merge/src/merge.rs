//! The greedy accelerator-merging loop and its outcome.

use crate::dfg::{merge_saving, merge_units, units_of_design, DatapathUnit};
use cayman_ir::Module;
use cayman_select::Solution;

/// A reusable accelerator: a group of kernels sharing at least one merged
/// datapath unit, each keeping its own control FSM.
#[derive(Debug, Clone)]
pub struct ReusableAccelerator {
    /// Kernel indices (into the solution's kernel list) served by this
    /// accelerator.
    pub kernels: Vec<usize>,
}

impl ReusableAccelerator {
    /// Number of distinct program regions this accelerator serves.
    pub fn region_count(&self) -> usize {
        self.kernels.len()
    }
}

/// Outcome of merging one solution's accelerators.
#[derive(Debug, Clone)]
pub struct MergeResult {
    /// Sum of standalone accelerator areas before merging.
    pub area_before: f64,
    /// Total area after merging (standalone non-datapath area unchanged;
    /// datapath area reduced by the achieved savings).
    pub area_after: f64,
    /// Number of pairwise merges performed.
    pub merges: usize,
    /// Reusable accelerators (groups of ≥ 2 kernels).
    pub reusable: Vec<ReusableAccelerator>,
    /// Final datapath units after merging.
    pub units: Vec<DatapathUnit>,
}

impl MergeResult {
    /// Area saved as a fraction of the pre-merge area (the paper's
    /// "Area saving (%)" columns of Table II).
    pub fn saving_fraction(&self) -> f64 {
        if self.area_before <= 0.0 {
            return 0.0;
        }
        (self.area_before - self.area_after) / self.area_before
    }

    /// Average number of program regions per reusable accelerator
    /// (the paper reports ≈3 on average).
    pub fn avg_regions_per_reusable(&self) -> f64 {
        if self.reusable.is_empty() {
            return 0.0;
        }
        self.reusable
            .iter()
            .map(|r| r.region_count() as f64)
            .sum::<f64>()
            / self.reusable.len() as f64
    }
}

/// Runs the paper's heuristic merging on a selection solution:
///
/// 1. extract datapath units from every configured accelerator,
/// 2. repeatedly merge the unit pair with the maximum positive estimated
///    saving (units from the *same* kernel never merge with each other —
///    sequential datapaths already share functional units internally),
/// 3. stop when no pair saves area.
pub fn merge_solution(module: &Module, solution: &Solution) -> MergeResult {
    let _s = cayman_obs::span!("merge.solution", kernels = solution.kernels.len());
    let mut units: Vec<DatapathUnit> = Vec::new();
    for (i, k) in solution.kernels.iter().enumerate() {
        units.extend(units_of_design(module, i, &k.design));
    }
    let area_before: f64 = solution.kernels.iter().map(|k| k.design.area).sum();

    let mut merges = 0usize;
    let mut total_saving = 0.0f64;
    loop {
        let mut best: Option<(usize, usize, f64)> = None;
        for i in 0..units.len() {
            for j in (i + 1)..units.len() {
                // Same-kernel units never merge with each other.
                if units[i]
                    .kernels
                    .iter()
                    .any(|k| units[j].kernels.contains(k))
                {
                    continue;
                }
                let s = merge_saving(&units[i], &units[j]);
                if s > 0.0 && best.map(|(_, _, bs)| s > bs).unwrap_or(true) {
                    best = Some((i, j, s));
                }
            }
        }
        let Some((i, j, s)) = best else { break };
        let merged = merge_units(&units[i], &units[j]);
        // Remove j first (higher index), then i.
        units.swap_remove(j);
        units.swap_remove(i);
        units.push(merged);
        merges += 1;
        total_saving += s;
    }

    // Group kernels by shared units (union-find over unit membership).
    let n_kernels = solution.kernels.len();
    let mut parent: Vec<usize> = (0..n_kernels).collect();
    fn find(parent: &mut Vec<usize>, x: usize) -> usize {
        if parent[x] != x {
            let r = find(parent, parent[x]);
            parent[x] = r;
        }
        parent[x]
    }
    for u in &units {
        for w in u.kernels.windows(2) {
            let a = find(&mut parent, w[0]);
            let b = find(&mut parent, w[1]);
            if a != b {
                parent[a] = b;
            }
        }
    }
    let mut groups: std::collections::BTreeMap<usize, Vec<usize>> = Default::default();
    for k in 0..n_kernels {
        let r = find(&mut parent, k);
        groups.entry(r).or_default().push(k);
    }
    let reusable: Vec<ReusableAccelerator> = groups
        .into_values()
        .filter(|g| g.len() >= 2)
        .map(|kernels| ReusableAccelerator { kernels })
        .collect();

    MergeResult {
        area_before,
        area_after: (area_before - total_saving).max(0.0),
        merges,
        reusable,
        units,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cayman_analysis::profile::Profile;
    use cayman_analysis::wpst::Wpst;
    use cayman_hls::inputs::FuncInputs;
    use cayman_ir::builder::ModuleBuilder;
    use cayman_ir::interp::Interp;
    use cayman_ir::Type;
    use cayman_select::{run_selection, SelectOptions};

    /// Three functions with identical multiply-accumulate loops — the 3mm
    /// situation where merging shines.
    fn triple_mac() -> cayman_ir::Module {
        let mut mb = ModuleBuilder::new("t");
        let n = 96usize;
        let mut funcs = Vec::new();
        let arrays: Vec<_> = (0..3)
            .map(|k| {
                (
                    mb.array(format!("x{k}"), Type::F64, &[n]),
                    mb.array(format!("y{k}"), Type::F64, &[n]),
                    mb.array(format!("z{k}"), Type::F64, &[n]),
                )
            })
            .collect();
        for (k, &(x, y, z)) in arrays.iter().enumerate() {
            let f = mb.function(format!("mac{k}"), &[], None, |fb| {
                fb.counted_loop(0, n as i64, 1, |fb, i| {
                    let xv = fb.load_idx(x, &[i]);
                    let yv = fb.load_idx(y, &[i]);
                    let p = fb.fmul(xv, yv);
                    let s = fb.fadd(p, fb.fconst(1.0));
                    fb.store_idx(z, &[i], s);
                });
                fb.ret(None);
            });
            funcs.push(f);
        }
        mb.function("main", &[], None, |fb| {
            for &f in &funcs {
                fb.call(f, &[], None);
            }
            fb.ret(None);
        });
        mb.finish()
    }

    #[allow(clippy::type_complexity)]
    fn analyse(
        module: &cayman_ir::Module,
    ) -> (
        Wpst,
        Profile,
        Vec<cayman_analysis::access::AccessAnalysis>,
        Vec<Vec<cayman_analysis::memdep::LoopDeps>>,
        Vec<Vec<f64>>,
    ) {
        module.verify().expect("verifies");
        let wpst = Wpst::build(module);
        let exec = Interp::new(module).run(&[]).expect("runs");
        let profile = Profile::aggregate(module, &wpst, &exec);
        let mut accesses = Vec::new();
        let mut deps = Vec::new();
        let mut trips = Vec::new();
        for f in module.function_ids() {
            let func = module.function(f);
            let ctx = &wpst.func_ctxs[f.index()];
            let mut scev = cayman_analysis::scev::Scev::new(func, ctx);
            let aa = cayman_analysis::access::AccessAnalysis::run(module, func, ctx, &mut scev);
            let dd = cayman_analysis::memdep::analyse_loop_deps(func, ctx, &mut scev, &aa);
            let tt: Vec<f64> = ctx
                .forest
                .ids()
                .map(|l| {
                    cayman_analysis::access::trip_count(&wpst, &profile, func, f, l).unwrap_or(1.0)
                })
                .collect();
            accesses.push(aa);
            deps.push(dd);
            trips.push(tt);
        }
        (wpst, profile, accesses, deps, trips)
    }

    #[test]
    fn identical_kernels_merge_with_large_savings() {
        let module = triple_mac();
        let (wpst, profile, accesses, deps, trips) = analyse(&module);
        let inputs: Vec<FuncInputs<'_>> = module
            .function_ids()
            .map(|f| FuncInputs {
                module: &module,
                func_id: f,
                ctx: &wpst.func_ctxs[f.index()],
                accesses: &accesses[f.index()],
                deps: &deps[f.index()],
                trips: &trips[f.index()],
                block_counts: &profile.block_counts[f.index()],
                content_fp: cayman_ir::fingerprint_function(module.function(f)),
            })
            .collect();
        let res = run_selection(&module, &wpst, &profile, &inputs, &SelectOptions::default());
        // take the biggest solution: should include all three kernels
        let sol = res.pareto.last().expect("solutions exist");
        assert!(sol.kernels.len() >= 3, "{} kernels", sol.kernels.len());

        let merged = merge_solution(&module, sol);
        assert!(merged.merges >= 2, "three identical kernels chain-merge");
        assert!(
            merged.saving_fraction() > 0.10,
            "substantial saving, got {:.3}",
            merged.saving_fraction()
        );
        assert!(merged.area_after < merged.area_before);
        // one reusable accelerator serving ≥ 3 regions
        assert_eq!(merged.reusable.len(), 1);
        assert!(merged.reusable[0].region_count() >= 3);
        assert!(merged.avg_regions_per_reusable() >= 3.0);
    }

    #[test]
    fn single_kernel_solution_has_nothing_to_merge() {
        let module = triple_mac();
        let (wpst, profile, accesses, deps, trips) = analyse(&module);
        let inputs: Vec<FuncInputs<'_>> = module
            .function_ids()
            .map(|f| FuncInputs {
                module: &module,
                func_id: f,
                ctx: &wpst.func_ctxs[f.index()],
                accesses: &accesses[f.index()],
                deps: &deps[f.index()],
                trips: &trips[f.index()],
                block_counts: &profile.block_counts[f.index()],
                content_fp: cayman_ir::fingerprint_function(module.function(f)),
            })
            .collect();
        let res = run_selection(&module, &wpst, &profile, &inputs, &SelectOptions::default());
        let single = res
            .pareto
            .iter()
            .find(|s| s.kernels.len() == 1)
            .expect("a one-kernel solution exists");
        let merged = merge_solution(&module, single);
        assert_eq!(merged.merges, 0);
        assert_eq!(merged.saving_fraction(), 0.0);
        assert!(merged.reusable.is_empty());
    }

    #[test]
    fn empty_solution_is_a_noop() {
        let module = triple_mac();
        let sol = cayman_select::Solution::empty();
        let merged = merge_solution(&module, &sol);
        assert_eq!(merged.area_before, 0.0);
        assert_eq!(merged.saving_fraction(), 0.0);
    }
}
