//! # cayman-merge
//!
//! Accelerator merging (paper §III-E): program regions with *distinct
//! control flows* share one reusable accelerator by fusing their datapaths —
//! operations common to two basic blocks are implemented once behind
//! multiplexers with reconfiguration-bit registers, while each original
//! kernel keeps its own control FSM. A global `Ctrl` unit configures the
//! muxes and triggers the right FSM per invocation.
//!
//! The pass is the paper's greedy heuristic: estimate the area saving of
//! merging every datapath-unit pair in a solution, merge the best positive
//! pair, treat the merged unit as a normal unit, repeat until no saving
//! remains.
//!
//! * [`dfg`] — datapath-unit extraction from configured accelerators and the
//!   pairwise merge cost model,
//! * [`merge`] — the greedy loop and [`merge::MergeResult`] (reusable
//!   accelerator grouping + area-saving percentages).

pub mod dfg;
pub mod merge;

pub use dfg::{merge_units, DatapathUnit};
pub use merge::{merge_solution, MergeResult, ReusableAccelerator};
