//! Datapath units and the pairwise merge cost model.
//!
//! A **datapath unit** is the functional-unit inventory of one hardware
//! region inside a configured accelerator:
//!
//! * each *pipelined loop* contributes a fully spatial unit — one FU per
//!   operation instance, times the unroll factor,
//! * the *sequential remainder* of a kernel contributes a time-shared unit —
//!   one FU per class in use.
//!
//! Merging two units implements the per-class maximum of their FU counts
//! once; the per-class minimum is the hardware that would otherwise be
//! duplicated. Each shared FU gains input multiplexers and a
//! reconfiguration-bit register (the paper's reconfigurable datapath).

use cayman_hls::design::AcceleratorDesign;
use cayman_hls::interface::{InterfaceKind, InterfaceSpec};
use cayman_hls::oplib::{fu_area, fu_class, FuClass, CONFIG_BIT_AREA, MUX_INPUT_AREA};
use cayman_ir::instr::Instr;
use cayman_ir::{BlockId, InstrId, Module};
use std::collections::{BTreeMap, HashMap};

/// Reconfiguration overhead of sharing one functional unit between merged
/// datapaths: compute units need operand multiplexers plus a config bit;
/// registers and AGU/FIFO channels only need the config bit (their routing is
/// subsumed by the compute-unit muxes).
fn share_overhead(class: FuClass) -> f64 {
    match class {
        FuClass::Reg | FuClass::AguFifo => CONFIG_BIT_AREA,
        _ => 2.0 * MUX_INPUT_AREA + CONFIG_BIT_AREA,
    }
}

/// One mergeable datapath unit.
#[derive(Debug, Clone)]
pub struct DatapathUnit {
    /// Indices (into the solution's kernel list) of the kernels whose
    /// hardware this unit implements.
    pub kernels: Vec<usize>,
    /// Functional units per class.
    pub classes: BTreeMap<FuClass, u32>,
    /// Accumulated multiplexer/configuration overhead from merges already
    /// folded into this unit.
    pub mux_area: f64,
}

impl DatapathUnit {
    /// FU area of this unit (excluding mux overhead).
    pub fn fu_area_total(&self) -> f64 {
        self.classes
            .iter()
            .map(|(&c, &n)| fu_area(c) * f64::from(n))
            .sum()
    }

    /// Total area including accumulated mux/config overhead.
    pub fn area(&self) -> f64 {
        self.fu_area_total() + self.mux_area
    }
}

/// Extracts the datapath units of one configured accelerator.
///
/// `kernel_idx` tags the units with the kernel's position in the solution.
pub fn units_of_design(
    module: &Module,
    kernel_idx: usize,
    design: &AcceleratorDesign,
) -> Vec<DatapathUnit> {
    let func = module.function(design.func);
    let iface: HashMap<InstrId, InterfaceSpec> = design.interfaces.iter().copied().collect();
    // Stream-channel interfaces own an AGU/FIFO-like unit per access: a full
    // AGU+FIFO for decoupled, the (cheaper, but structurally shareable)
    // tap-and-shift channel for line buffers.
    let is_stream_channel = |iid: &InstrId| {
        matches!(
            iface.get(iid).map(|s| s.kind),
            Some(InterfaceKind::Decoupled) | Some(InterfaceKind::LineBuffer)
        )
    };
    let mut units = Vec::new();

    let mut pipelined_blocks: Vec<BlockId> = Vec::new();
    for (_, blocks, factor) in &design.pipelined_detail {
        pipelined_blocks.extend(blocks.iter().copied());
        let mut classes: BTreeMap<FuClass, u32> = BTreeMap::new();
        for &b in blocks {
            for &iid in &func.block(b).instrs {
                if let Some(c) = fu_class(func.instr(iid)) {
                    *classes.entry(c).or_insert(0) += factor;
                }
                // every op instance owns an output register (dedicated_area)
                *classes.entry(FuClass::Reg).or_insert(0) += factor;
                if is_stream_channel(&iid) {
                    *classes.entry(FuClass::AguFifo).or_insert(0) += factor;
                }
            }
        }
        if !classes.is_empty() {
            units.push(DatapathUnit {
                kernels: vec![kernel_idx],
                classes,
                mux_area: 0.0,
            });
        }
    }

    // Sequential remainder: one FU per class in use, plus per-op registers.
    let mut seq_classes: BTreeMap<FuClass, u32> = BTreeMap::new();
    for &b in design
        .blocks
        .iter()
        .filter(|b| !pipelined_blocks.contains(b))
    {
        for &iid in &func.block(b).instrs {
            if !matches!(func.instr(iid), Instr::Phi { .. }) {
                if let Some(c) = fu_class(func.instr(iid)) {
                    seq_classes.entry(c).or_insert(1);
                }
            }
            *seq_classes.entry(FuClass::Reg).or_insert(0) += 1;
            if is_stream_channel(&iid) {
                *seq_classes.entry(FuClass::AguFifo).or_insert(0) += 1;
            }
        }
    }
    if !seq_classes.is_empty() {
        units.push(DatapathUnit {
            kernels: vec![kernel_idx],
            classes: seq_classes,
            mux_area: 0.0,
        });
    }

    units
}

/// Area saved by merging `a` and `b`, net of multiplexer overhead.
///
/// Positive when the shared hardware outweighs the reconfiguration cost.
pub fn merge_saving(a: &DatapathUnit, b: &DatapathUnit) -> f64 {
    let mut saving = 0.0;
    for (&c, &na) in &a.classes {
        let nb = b.classes.get(&c).copied().unwrap_or(0);
        let shared = na.min(nb);
        saving += (fu_area(c) - share_overhead(c)) * f64::from(shared);
    }
    saving
}

/// Merges two units: per-class maximum of FU counts, union of kernel tags,
/// accumulated mux overhead.
pub fn merge_units(a: &DatapathUnit, b: &DatapathUnit) -> DatapathUnit {
    let mut classes = a.classes.clone();
    for (&c, &n) in &b.classes {
        let e = classes.entry(c).or_insert(0);
        *e = (*e).max(n);
    }
    let mut overhead = 0.0;
    for (&c, &na) in &a.classes {
        let shared = na.min(b.classes.get(&c).copied().unwrap_or(0));
        overhead += share_overhead(c) * f64::from(shared);
    }
    let mut kernels = a.kernels.clone();
    for &k in &b.kernels {
        if !kernels.contains(&k) {
            kernels.push(k);
        }
    }
    kernels.sort_unstable();
    DatapathUnit {
        kernels,
        classes,
        mux_area: a.mux_area + b.mux_area + overhead,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit(k: usize, pairs: &[(FuClass, u32)]) -> DatapathUnit {
        DatapathUnit {
            kernels: vec![k],
            classes: pairs.iter().copied().collect(),
            mux_area: 0.0,
        }
    }

    #[test]
    fn identical_units_save_almost_everything() {
        let a = unit(0, &[(FuClass::FMul, 2), (FuClass::FAdd, 2)]);
        let b = unit(1, &[(FuClass::FMul, 2), (FuClass::FAdd, 2)]);
        let saving = merge_saving(&a, &b);
        // shares 2 fmul + 2 fadd = 20000 area, minus 4 muxed FUs
        assert!(saving > 0.9 * a.fu_area_total(), "saving {saving}");
        let m = merge_units(&a, &b);
        assert_eq!(m.classes[&FuClass::FMul], 2);
        assert_eq!(m.kernels, vec![0, 1]);
        assert!(m.mux_area > 0.0);
        // conservation: merged area = a + b − saving
        let merged_total = m.area();
        assert!(
            (merged_total - (a.area() + b.area() - saving)).abs() < 1e-6,
            "area bookkeeping"
        );
    }

    #[test]
    fn disjoint_units_do_not_save() {
        let a = unit(0, &[(FuClass::FMul, 1)]);
        let b = unit(1, &[(FuClass::IntDiv, 1)]);
        assert_eq!(merge_saving(&a, &b), 0.0);
        let m = merge_units(&a, &b);
        assert_eq!(m.classes.len(), 2);
        assert_eq!(m.mux_area, 0.0);
    }

    #[test]
    fn cheap_shared_units_can_lose() {
        // sharing a single int ALU (500) costs a mux pair (170) — still
        // positive; but many tiny shares on an already-merged unit can go
        // negative relative to cheap classes. Verify the arithmetic.
        let a = unit(0, &[(FuClass::IntAlu, 1)]);
        let b = unit(1, &[(FuClass::IntAlu, 1)]);
        let s = merge_saving(&a, &b);
        assert!((s - (500.0 - 170.0)).abs() < 1e-9);
    }

    #[test]
    fn merge_is_commutative_in_inventory() {
        let a = unit(0, &[(FuClass::FMul, 3), (FuClass::IntAlu, 1)]);
        let b = unit(1, &[(FuClass::FMul, 1), (FuClass::FAdd, 2)]);
        let ab = merge_units(&a, &b);
        let ba = merge_units(&b, &a);
        assert_eq!(ab.classes, ba.classes);
        assert_eq!(ab.mux_area, ba.mux_area);
        assert!((merge_saving(&a, &b) - merge_saving(&b, &a)).abs() < 1e-9);
    }
}
