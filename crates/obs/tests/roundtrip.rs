//! End-to-end recorder → export → validator round trip. A single test
//! function owns the process-global recorder so enable/disable cannot race
//! with other tests in this binary.

use cayman_obs::trace::{parse_json, validate_chrome};

#[test]
fn record_export_validate_roundtrip() {
    cayman_obs::enable();
    assert!(cayman_obs::enabled());

    cayman_obs::lane(|| "main".to_string());
    {
        let _stage = cayman_obs::span!("analyse.profile", benchmark = "trisolv");
        let t = cayman_obs::timed("profile.interp");
        cayman_obs::counter("profile.blocks", 128);
        cayman_obs::gauge("profile.blocks_per_sec", 2.5e6);
        cayman_obs::diag("interp.fallback", || "decode unsupported".to_string());
        assert!(t.finish() > 0);
    }
    let worker = std::thread::spawn(|| {
        cayman_obs::lane(|| "select.worker.0".to_string());
        let _task = cayman_obs::span!("select.task.accel", vertex = 3usize);
        cayman_obs::instant("select.steal");
        cayman_obs::counter("select.cache.miss", 1);
    });
    worker.join().unwrap();
    cayman_obs::disable();

    let trace = cayman_obs::drain();
    assert!(!trace.is_empty());

    // Chrome export passes the structural validator and reports what we
    // recorded.
    let chrome = trace.to_chrome();
    let summary = validate_chrome(&chrome).unwrap_or_else(|e| panic!("invalid trace: {e}"));
    assert_eq!(summary.spans, 3, "analyse.profile + profile.interp + task");
    assert!(summary.has_span_prefix("analyse."));
    assert!(summary.has_span_prefix("select.task."));
    assert!(summary.lanes.contains(&"main".to_string()));
    assert!(summary.lanes.contains(&"select.worker.0".to_string()));
    assert!(summary.counters.contains(&"profile.blocks".to_string()));
    assert!(summary.instants.iter().any(|n| n == "select.steal"));

    // Every JSONL line is a standalone JSON object.
    let jsonl = trace.to_jsonl();
    let lines: Vec<_> = jsonl.lines().collect();
    assert_eq!(lines.len(), trace.len());
    for line in lines {
        let obj = parse_json(line).unwrap_or_else(|e| panic!("bad JSONL line {line:?}: {e}"));
        assert!(obj.get("kind").is_some() && obj.get("ts_nanos").is_some());
    }

    // The human summary names the heavy hitters.
    let human = trace.summary();
    assert!(human.contains("analyse.profile"), "{human}");
    assert!(human.contains("select.cache.miss"), "{human}");
    assert!(human.contains("select.worker.0"), "{human}");

    // Drain cleared the buffers.
    assert!(cayman_obs::drain().is_empty());
}
