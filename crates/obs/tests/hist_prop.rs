//! Property tests for the log-bucketed histogram (ISSUE 10 satellite):
//! sharded recording + [`HistSnapshot::merge`] must answer every quantile
//! **identically** to one histogram that saw all samples, and both must
//! land within one bucket's relative error (≤ 1/2³) of the true sample
//! quantile.

use cayman_obs::hist::{bucket_index, HistSnapshot, Histogram, SUB_BITS};
use cayman_testkit::{prop_assert, prop_assert_eq, prop_check};

/// Draws a sample skewed across magnitudes: latencies live anywhere from
/// single nanoseconds to minutes, so exercise every octave band.
fn draw_value(rng: &mut cayman_testkit::Rng) -> u64 {
    let magnitude = rng.range_u32(0, 40);
    let base = 1u64 << magnitude;
    base + rng.next_u64() % base.max(1)
}

#[test]
fn merged_shards_answer_quantiles_like_one_histogram() {
    prop_check!(cases = 200, |rng| {
        let shards = rng.range_usize(1, 9);
        let n = rng.range_usize(1, 400);
        let whole = Histogram::new();
        let parts: Vec<Histogram> = (0..shards).map(|_| Histogram::new()).collect();
        let mut samples = Vec::with_capacity(n);
        for i in 0..n {
            let v = draw_value(rng);
            samples.push(v);
            whole.record(v);
            parts[i % shards].record(v);
        }

        // merge in arbitrary (rotated) order — merge is commutative
        let start = rng.range_usize(0, shards);
        let mut merged = HistSnapshot::default();
        for i in 0..shards {
            merged.merge(&parts[(start + i) % shards].snapshot());
        }

        let reference = whole.snapshot();
        prop_assert!(
            merged == reference,
            "sharded+merged snapshot diverges from single-histogram snapshot"
        );
        prop_assert_eq!(merged.count(), n as u64);
        prop_assert_eq!(merged.sum(), samples.iter().sum::<u64>());

        // quantile answers agree exactly, and land in the bucket of the
        // true sample quantile (i.e. within one bucket's relative error,
        // 2^-SUB_BITS for values past the linear range)
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        for q in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
            let m = merged.quantile(q);
            let r = reference.quantile(q);
            prop_assert!(m == r, "merged vs whole disagree at q={q}: {m} vs {r}");
            let rank = ((q * n as f64).ceil() as usize).max(1).min(n);
            let truth = sorted[rank - 1];
            prop_assert!(
                bucket_index(m) == bucket_index(truth),
                "q={q} estimate {m} not in the bucket of true quantile {truth} \
                 (relative error bound 1/{})",
                1u64 << SUB_BITS
            );
            prop_assert!(
                m >= truth,
                "bucket-upper-bound estimate {} below truth {}",
                m,
                truth
            );
        }
        prop_assert_eq!(merged.quantile(1.0), merged.max());
        Ok(())
    });
}

#[test]
fn merge_is_associative_and_identity_on_empty() {
    prop_check!(cases = 100, |rng| {
        let mk = |rng: &mut cayman_testkit::Rng| {
            let h = Histogram::new();
            for _ in 0..rng.range_usize(0, 50) {
                h.record(draw_value(rng));
            }
            h.snapshot()
        };
        let (a, b, c) = (mk(rng), mk(rng), mk(rng));

        // (a + b) + c == a + (b + c)
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        prop_assert!(left == right, "merge is not associative");

        // empty is the identity
        let mut with_empty = a.clone();
        with_empty.merge(&HistSnapshot::default());
        prop_assert!(with_empty == a, "merging an empty snapshot changed state");
        Ok(())
    });
}
