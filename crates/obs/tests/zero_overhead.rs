//! Verifies the disabled-tracing cost model: the selection hot path's obs
//! calls (`span!` with args, `counter`, `timed`) must not allocate at all
//! when tracing is off — and neither may [`cayman_obs::hist::Histogram::record`],
//! which is *always on* (the server records every request through it). A
//! counting global allocator makes "no allocations" a hard assertion
//! rather than a benchmark judgement call.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};

struct CountingAlloc;

static ALLOCS: AtomicUsize = AtomicUsize::new(0);

// Only the thread running the hot loop is counted: the libtest harness
// thread allocates at its own pace (channel messages, deadline timers),
// which is noise this test must not observe.
thread_local! {
    static COUNTING: Cell<bool> = const { Cell::new(false) };
}

fn counting_here() -> bool {
    COUNTING.try_with(Cell::get).unwrap_or(false)
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if counting_here() {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if counting_here() {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

#[test]
fn disabled_tracing_allocates_nothing_on_the_hot_path() {
    cayman_obs::disable();
    // Warm up once outside the measured window, then measure a hot loop of
    // exactly the calls the selection DP makes per vertex/config.
    hot_path_iteration(0);
    let before = ALLOCS.load(Ordering::Relaxed);
    COUNTING.with(|c| c.set(true));
    for i in 0..10_000usize {
        hot_path_iteration(i);
    }
    COUNTING.with(|c| c.set(false));
    let after = ALLOCS.load(Ordering::Relaxed);
    assert_eq!(
        after - before,
        0,
        "disabled tracing allocated {} times over 10k hot-path iterations",
        after - before
    );
}

// The server's per-request histogram: recording is always on, so the
// record path must be allocation-free regardless of the tracing flag.
static HIST: cayman_obs::hist::Histogram = cayman_obs::hist::Histogram::new();

fn hot_path_iteration(i: usize) {
    let _g = cayman_obs::span!("select.task.bb", vertex = i);
    cayman_obs::counter("select.cache.hit", 1);
    cayman_obs::counter("select.cache.miss", 1);
    let t = cayman_obs::timed("model.accel");
    let nanos = t.finish();
    std::hint::black_box(nanos);
    HIST.record(std::hint::black_box(i as u64 * 977));
    cayman_obs::instant("select.steal");
    cayman_obs::diag("interp.fallback", || format!("vertex {i}"));
    cayman_obs::lane(|| format!("select.worker.{i}"));
}
