//! A minimal JSON parser and a Chrome-trace validator, used by the trace
//! round-trip tests and the `tracecheck` CI smoke step. Dependency-free by
//! design: the workspace builds offline.

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (parsed as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object (insertion order not preserved; keys sorted).
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Object field lookup; `None` for non-objects or missing keys.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }
}

/// Parses a complete JSON document, rejecting trailing garbage.
pub fn parse_json(input: &str) -> Result<Json, String> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    let Some(&c) = b.get(*pos) else {
        return Err("unexpected end of input".to_string());
    };
    match c {
        b'{' => parse_obj(b, pos),
        b'[' => parse_arr(b, pos),
        b'"' => Ok(Json::Str(parse_string(b, pos)?)),
        b't' => parse_lit(b, pos, "true", Json::Bool(true)),
        b'f' => parse_lit(b, pos, "false", Json::Bool(false)),
        b'n' => parse_lit(b, pos, "null", Json::Null),
        b'-' | b'0'..=b'9' => parse_num(b, pos),
        _ => Err(format!("unexpected byte {:?} at {}", c as char, *pos)),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("bad literal at byte {}", *pos))
    }
}

fn parse_num(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-') {
        *pos += 1;
    }
    std::str::from_utf8(&b[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(Json::Num)
        .ok_or_else(|| format!("bad number at byte {start}"))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    debug_assert_eq!(b[*pos], b'"');
    *pos += 1;
    let mut out = String::new();
    loop {
        let Some(&c) = b.get(*pos) else {
            return Err("unterminated string".to_string());
        };
        *pos += 1;
        match c {
            b'"' => return Ok(out),
            b'\\' => {
                let Some(&esc) = b.get(*pos) else {
                    return Err("unterminated escape".to_string());
                };
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'u' => {
                        let hex = b
                            .get(*pos..*pos + 4)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                        *pos += 4;
                        // Surrogate pairs are not produced by our writer;
                        // map lone surrogates to U+FFFD.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    _ => return Err(format!("bad escape \\{}", esc as char)),
                }
            }
            _ => {
                // Re-decode the UTF-8 sequence starting at c.
                let len = utf8_len(c);
                let start = *pos - 1;
                *pos = start + len;
                let s = b
                    .get(start..start + len)
                    .and_then(|s| std::str::from_utf8(s).ok())
                    .ok_or("invalid utf-8 in string")?;
                out.push_str(s);
            }
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

fn parse_arr(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // '['
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn parse_obj(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // '{'
    let mut map = BTreeMap::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(map));
    }
    loop {
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {}", *pos));
        }
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {}", *pos));
        }
        *pos += 1;
        let value = parse_value(b, pos)?;
        map.insert(key, value);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(map));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

/// What [`validate_chrome`] learned about a well-formed trace.
#[derive(Debug, Default)]
pub struct TraceSummary {
    /// Total `traceEvents` entries.
    pub events: usize,
    /// Count of completed spans (matched B/E pairs).
    pub spans: usize,
    /// Distinct span names seen.
    pub span_names: Vec<String>,
    /// Thread lane names from `thread_name` metadata events.
    pub lanes: Vec<String>,
    /// Distinct counter track names.
    pub counters: Vec<String>,
    /// Distinct instant marker names.
    pub instants: Vec<String>,
}

impl TraceSummary {
    /// Whether any recorded span name starts with `prefix` — used to assert
    /// stage coverage (`normalize.`, `profile.`, `select.`, ...).
    pub fn has_span_prefix(&self, prefix: &str) -> bool {
        self.span_names.iter().any(|n| n.starts_with(prefix))
    }
}

/// Parses `input` as a Chrome trace-format document and checks structural
/// invariants: every event has `ph`/`pid`/`tid` (+`ts` for timed phases),
/// `B`/`E` events are balanced per thread with matching names, and
/// timestamps are non-decreasing within each thread.
pub fn validate_chrome(input: &str) -> Result<TraceSummary, String> {
    let doc = parse_json(input)?;
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_arr)
        .ok_or("missing traceEvents array")?;
    let mut summary = TraceSummary {
        events: events.len(),
        ..TraceSummary::default()
    };
    let mut stacks: BTreeMap<i64, Vec<String>> = BTreeMap::new();
    let mut last_ts: BTreeMap<i64, f64> = BTreeMap::new();
    let mut span_names: BTreeMap<String, ()> = BTreeMap::new();
    let mut counters: BTreeMap<String, ()> = BTreeMap::new();
    let mut instants: BTreeMap<String, ()> = BTreeMap::new();
    for (i, e) in events.iter().enumerate() {
        let ph = e
            .get("ph")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("event {i}: missing ph"))?;
        let tid = e
            .get("tid")
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("event {i}: missing tid"))? as i64;
        e.get("pid")
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("event {i}: missing pid"))?;
        let name = e
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("event {i}: missing name"))?
            .to_string();
        if ph != "M" {
            let ts = e
                .get("ts")
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("event {i}: missing ts"))?;
            let last = last_ts.entry(tid).or_insert(f64::NEG_INFINITY);
            if ts < *last {
                return Err(format!(
                    "event {i} ({name}): timestamp {ts} < {last} on tid {tid}"
                ));
            }
            *last = ts;
        }
        match ph {
            "B" => {
                span_names.insert(name.clone(), ());
                stacks.entry(tid).or_default().push(name);
            }
            "E" => {
                let top = stacks.entry(tid).or_default().pop().ok_or_else(|| {
                    format!("event {i} ({name}): E without matching B on tid {tid}")
                })?;
                if top != name {
                    return Err(format!(
                        "event {i}: E \"{name}\" closes span \"{top}\" on tid {tid}"
                    ));
                }
                summary.spans += 1;
            }
            "C" => {
                counters.insert(name, ());
            }
            "i" | "I" => {
                instants.insert(name, ());
            }
            "M" => {
                if name == "thread_name" {
                    if let Some(lane) = e
                        .get("args")
                        .and_then(|a| a.get("name"))
                        .and_then(Json::as_str)
                    {
                        summary.lanes.push(lane.to_string());
                    }
                }
            }
            other => return Err(format!("event {i}: unknown phase {other:?}")),
        }
    }
    for (tid, stack) in &stacks {
        if let Some(open) = stack.last() {
            return Err(format!("unclosed span \"{open}\" on tid {tid}"));
        }
    }
    summary.span_names = span_names.into_keys().collect();
    summary.counters = counters.into_keys().collect();
    summary.instants = instants.into_keys().collect();
    summary.lanes.sort();
    summary.lanes.dedup();
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parser_roundtrips_basic_values() {
        let doc =
            parse_json(r#"{"a":[1,2.5,-3e2],"b":"x\n\"y\"","c":true,"d":null,"e":{}}"#).unwrap();
        assert_eq!(doc.get("b").and_then(Json::as_str), Some("x\n\"y\""));
        assert_eq!(
            doc.get("a").and_then(Json::as_arr).map(|a| a.len()),
            Some(3)
        );
        assert_eq!(doc.get("d"), Some(&Json::Null));
        assert!(parse_json("{\"a\":1} trailing").is_err());
        assert!(parse_json("{\"a\":}").is_err());
    }

    #[test]
    fn validator_rejects_unbalanced_and_nonmonotone() {
        let unbalanced = r#"{"traceEvents":[
            {"name":"a","ph":"B","ts":1.0,"pid":1,"tid":0}
        ]}"#;
        assert!(validate_chrome(unbalanced)
            .unwrap_err()
            .contains("unclosed"));
        let crossed = r#"{"traceEvents":[
            {"name":"a","ph":"B","ts":1.0,"pid":1,"tid":0},
            {"name":"b","ph":"E","ts":2.0,"pid":1,"tid":0}
        ]}"#;
        assert!(validate_chrome(crossed).unwrap_err().contains("closes"));
        let backwards = r#"{"traceEvents":[
            {"name":"a","ph":"B","ts":5.0,"pid":1,"tid":0},
            {"name":"a","ph":"E","ts":1.0,"pid":1,"tid":0}
        ]}"#;
        assert!(validate_chrome(backwards)
            .unwrap_err()
            .contains("timestamp"));
    }

    #[test]
    fn validator_accepts_well_formed_trace_with_lanes() {
        let ok = r#"{"traceEvents":[
            {"name":"thread_name","ph":"M","pid":1,"tid":3,"args":{"name":"select.worker.0"}},
            {"name":"select.dp","ph":"B","ts":1.0,"pid":1,"tid":3},
            {"name":"select.cache.hit","ph":"C","ts":1.5,"pid":1,"tid":3,"args":{"value":1}},
            {"name":"select.steal","ph":"i","ts":2.0,"pid":1,"tid":3,"s":"t"},
            {"name":"select.dp","ph":"E","ts":3.0,"pid":1,"tid":3}
        ],"displayTimeUnit":"ms"}"#;
        let s = validate_chrome(ok).unwrap();
        assert_eq!(s.spans, 1);
        assert_eq!(s.lanes, vec!["select.worker.0"]);
        assert!(s.has_span_prefix("select."));
        assert_eq!(s.counters, vec!["select.cache.hit"]);
        assert_eq!(s.instants, vec!["select.steal"]);
    }
}
