//! Clocks used by the recorder and by per-worker busy accounting.

/// CPU time consumed by the calling thread, in nanoseconds.
///
/// Used for per-worker busy accounting: on a host with fewer cores than
/// workers (CI containers are often single-core), wall-clock attribution
/// would charge preemption gaps to whichever worker happened to be
/// descheduled, while thread CPU time measures the work itself — the
/// quantity that becomes the per-worker wall time on a sufficiently
/// parallel host.
#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
pub fn thread_cpu_nanos() -> u64 {
    // Raw clock_gettime(CLOCK_THREAD_CPUTIME_ID): std exposes no
    // thread-CPU clock and the workspace links no libc crate.
    const SYS_CLOCK_GETTIME: i64 = 228;
    const CLOCK_THREAD_CPUTIME_ID: i64 = 3;
    let mut ts = [0i64; 2]; // timespec { tv_sec, tv_nsec }
    let ret: i64;
    unsafe {
        std::arch::asm!(
            "syscall",
            inlateout("rax") SYS_CLOCK_GETTIME => ret,
            in("rdi") CLOCK_THREAD_CPUTIME_ID,
            in("rsi") ts.as_mut_ptr(),
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack),
        );
    }
    if ret != 0 {
        return 0;
    }
    (ts[0] as u64).saturating_mul(1_000_000_000) + ts[1] as u64
}

/// Portable fallback: wall time from a process-global epoch. Overcounts a
/// preempted worker's busy time, but keeps balance numbers meaningful on
/// uncontended hosts.
#[cfg(not(all(target_os = "linux", target_arch = "x86_64")))]
pub fn thread_cpu_nanos() -> u64 {
    use std::sync::OnceLock;
    use std::time::Instant;
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thread_cpu_clock_is_monotone_and_advances() {
        let a = thread_cpu_nanos();
        let mut x = 0u64;
        for i in 0..2_000_000u64 {
            x = x.wrapping_add(i ^ x.rotate_left(7));
        }
        std::hint::black_box(x);
        let b = thread_cpu_nanos();
        assert!(b > a, "spin consumed no CPU time ({a} → {b})");
    }
}
