//! Fixed-size, log-bucketed (HDR-style) latency histograms.
//!
//! A [`Histogram`] is a flat array of [`BUCKETS`] atomic counters covering
//! the whole `u64` range: values below [`LINEAR`] get one exact bucket each,
//! and every power-of-two octave above that is split into [`LINEAR`]
//! sub-buckets, so the relative error of any bucket is at most
//! `1 / LINEAR` (12.5%). The record path is **allocation-free and
//! lock-free** — one `fetch_add` on the bucket plus count/sum/min/max
//! updates — so it is safe on the server's per-request hot path (pinned by
//! the `zero_overhead` test).
//!
//! Unlike the event [`crate::recorder`], histograms are *always on*: they
//! are cheap aggregates, not traces, and the metrics surface must report
//! real distributions whether or not span tracing is enabled.
//!
//! [`Histogram::snapshot`] freezes the counters into a plain
//! [`HistSnapshot`], which is mergeable across threads/processes
//! ([`HistSnapshot::merge`]) and queryable for quantiles
//! ([`HistSnapshot::quantile`], `p50`/`p90`/`p99`). A merged snapshot's
//! quantiles land in the **same bucket** as the quantiles of the
//! concatenated underlying samples (property-tested), which is the precise
//! sense in which log-bucketed histograms are mergeable.

use std::sync::atomic::{AtomicU64, Ordering};

/// log2 of the number of sub-buckets per octave. 3 ⇒ 8 sub-buckets ⇒ worst
/// case relative bucket width 1/8 = 12.5%.
pub const SUB_BITS: u32 = 3;

/// Number of exact low buckets / sub-buckets per octave.
pub const LINEAR: usize = 1 << SUB_BITS;

/// Total bucket count: [`LINEAR`] exact buckets for `0..LINEAR`, then
/// [`LINEAR`] sub-buckets for each leading-bit position `SUB_BITS..=63`.
pub const BUCKETS: usize = LINEAR + (64 - SUB_BITS as usize) * LINEAR;

/// The bucket a value lands in. Total over `u64`, monotone in `value`.
#[inline]
pub fn bucket_index(value: u64) -> usize {
    if value < LINEAR as u64 {
        return value as usize;
    }
    // Leading-bit position e >= SUB_BITS; the octave [2^e, 2^(e+1)) is cut
    // into LINEAR slices of width 2^(e - SUB_BITS).
    let e = 63 - value.leading_zeros();
    let sub = (value >> (e - SUB_BITS)) as usize & (LINEAR - 1);
    LINEAR + (e - SUB_BITS) as usize * LINEAR + sub
}

/// Inclusive `(lo, hi)` value range of bucket `index`.
///
/// # Panics
///
/// Panics when `index >= BUCKETS`.
pub fn bucket_bounds(index: usize) -> (u64, u64) {
    assert!(index < BUCKETS, "bucket index {index} out of range");
    if index < LINEAR {
        return (index as u64, index as u64);
    }
    let e = SUB_BITS + ((index - LINEAR) / LINEAR) as u32;
    let sub = ((index - LINEAR) % LINEAR) as u64;
    let width = 1u64 << (e - SUB_BITS);
    let lo = (1u64 << e) + sub * width;
    (lo, lo + (width - 1))
}

/// A thread-safe log-bucketed histogram. All-atomic, fixed-size; see the
/// module docs for the bucketing scheme and cost model.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram. `const` so histograms can live in `static`s.
    pub const fn new() -> Self {
        Histogram {
            buckets: [const { AtomicU64::new(0) }; BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Records one observation. Lock-free, allocation-free: five relaxed
    /// atomic RMWs and no branches beyond the bucket pick.
    #[inline]
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Freezes the counters into a mergeable, queryable snapshot. Not a
    /// single atomic cut across buckets — concurrent `record`s may be
    /// half-visible — but every counter is individually consistent, which
    /// is all a metrics scrape needs.
    pub fn snapshot(&self) -> HistSnapshot {
        HistSnapshot {
            counts: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            min: self.min.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }

    /// Zeroes every counter (tests and bench resets; production histograms
    /// are cumulative).
    pub fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.min.store(u64::MAX, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }
}

/// One non-empty bucket of a [`HistSnapshot`], for exposition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Bucket {
    /// Smallest value the bucket holds.
    pub lo: u64,
    /// Largest value the bucket holds (inclusive).
    pub hi: u64,
    /// Observations in `[lo, hi]`.
    pub count: u64,
}

/// A frozen histogram: plain counters, mergeable and queryable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistSnapshot {
    counts: [u64; BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for HistSnapshot {
    fn default() -> Self {
        HistSnapshot {
            counts: [0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

impl HistSnapshot {
    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observed values (wrapping only past `u64::MAX` total).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest observed value, or 0 when empty.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest observed value (exact, not bucketed), or 0 when empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Adds `other`'s observations into `self`. Merging snapshots is
    /// exactly equivalent to having recorded both snapshots' samples into
    /// one histogram: bucket counts, count, sum, min and max all add up
    /// losslessly.
    pub fn merge(&mut self, other: &HistSnapshot) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.wrapping_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// The estimated `q`-quantile (`0.0 ..= 1.0`): the inclusive upper
    /// bound of the bucket holding the true sample quantile, clamped to the
    /// exact observed maximum. The estimate therefore lands in the same
    /// bucket as the true quantile — within one bucket's relative error
    /// (≤ 1/[`LINEAR`]). Returns 0 on an empty snapshot.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        // rank in 1..=count: smallest k with cumulative >= k
        let target = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return bucket_bounds(i).1.min(self.max);
            }
        }
        self.max
    }

    /// Median estimate.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 90th-percentile estimate.
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// 99th-percentile estimate.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// The non-empty buckets in increasing value order.
    pub fn buckets(&self) -> impl Iterator<Item = Bucket> + '_ {
        self.counts.iter().enumerate().filter_map(|(i, &count)| {
            if count == 0 {
                return None;
            }
            let (lo, hi) = bucket_bounds(i);
            Some(Bucket { lo, hi, count })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_partition_the_u64_range() {
        // every bucket's hi + 1 is the next bucket's lo, starting at 0
        let mut expect_lo = 0u64;
        for i in 0..BUCKETS {
            let (lo, hi) = bucket_bounds(i);
            assert_eq!(lo, expect_lo, "bucket {i} lo");
            assert!(hi >= lo);
            assert_eq!(bucket_index(lo), i, "lo maps back to bucket {i}");
            assert_eq!(bucket_index(hi), i, "hi maps back to bucket {i}");
            if hi == u64::MAX {
                assert_eq!(i, BUCKETS - 1, "only the last bucket ends at MAX");
                return;
            }
            expect_lo = hi + 1;
        }
        panic!("last bucket must end at u64::MAX");
    }

    #[test]
    fn bucket_relative_error_is_bounded() {
        for i in LINEAR..BUCKETS {
            let (lo, hi) = bucket_bounds(i);
            let width = hi - lo + 1;
            assert!(
                width <= lo / LINEAR as u64,
                "bucket {i}: width {width} exceeds lo/{LINEAR} = {}",
                lo / LINEAR as u64
            );
        }
    }

    #[test]
    fn record_and_quantiles_exact_small_values() {
        let h = Histogram::new();
        for v in 0..8u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 8);
        assert_eq!(s.sum(), 28);
        assert_eq!(s.min(), 0);
        assert_eq!(s.max(), 7);
        // values below LINEAR are bucketed exactly
        assert_eq!(s.p50(), 3);
        assert_eq!(s.quantile(1.0), 7);
        assert_eq!(s.quantile(0.0), 0);
    }

    #[test]
    fn empty_snapshot_is_all_zeroes() {
        let s = Histogram::new().snapshot();
        assert!(s.is_empty());
        assert_eq!((s.p50(), s.p99(), s.min(), s.max()), (0, 0, 0, 0));
        assert_eq!(s.buckets().count(), 0);
    }

    #[test]
    fn merge_adds_losslessly() {
        let a = Histogram::new();
        let b = Histogram::new();
        for v in [1u64, 10, 100, 1_000] {
            a.record(v);
        }
        for v in [5u64, 50_000, u64::MAX] {
            b.record(v);
        }
        let mut m = a.snapshot();
        m.merge(&b.snapshot());
        assert_eq!(m.count(), 7);
        assert_eq!(m.min(), 1);
        assert_eq!(m.max(), u64::MAX);
        let both = Histogram::new();
        for v in [1u64, 10, 100, 1_000, 5, 50_000, u64::MAX] {
            both.record(v);
        }
        assert_eq!(m, both.snapshot(), "merge == record-all-into-one");
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let h = Histogram::new();
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let h = &h;
                s.spawn(move || {
                    for i in 0..10_000u64 {
                        h.record(t * 1_000_000 + i);
                    }
                });
            }
        });
        let s = h.snapshot();
        assert_eq!(s.count(), 40_000);
        assert_eq!(s.counts.iter().sum::<u64>(), 40_000);
    }

    #[test]
    fn quantile_lands_in_true_quantile_bucket() {
        let h = Histogram::new();
        let mut samples: Vec<u64> = (0..500u64).map(|i| i * i * 37 + 13).collect();
        for &v in &samples {
            h.record(v);
        }
        samples.sort_unstable();
        let s = h.snapshot();
        for q in [0.01, 0.25, 0.5, 0.9, 0.99, 1.0] {
            let rank = ((q * samples.len() as f64).ceil() as usize).max(1) - 1;
            let truth = samples[rank];
            let est = s.quantile(q);
            assert_eq!(
                bucket_index(est),
                bucket_index(truth),
                "q={q}: estimate {est} not in true quantile {truth}'s bucket"
            );
        }
    }
}
