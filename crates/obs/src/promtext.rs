//! A small, dependency-free parser/validator for the Prometheus-style text
//! exposition produced by [`crate::registry::MetricsSnapshot::to_prometheus`]
//! — the counterpart of [`crate::trace::validate_chrome`] for the metrics
//! surface. CI gates and smoke binaries use it to reject malformed
//! expositions (duplicate series, non-monotone histogram buckets,
//! inconsistent `_sum`/`_count`) without pulling in a real Prometheus
//! client.

use std::collections::{BTreeMap, HashSet};

/// One parsed sample line: `name{label="v",…} value`.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Metric name (already sanitized by the producer).
    pub name: String,
    /// Label pairs in source order (the exposition only uses `le`).
    pub labels: Vec<(String, String)>,
    /// Sample value.
    pub value: f64,
}

impl Sample {
    /// The series identity: name plus rendered label set.
    fn series_key(&self) -> String {
        let mut key = self.name.clone();
        for (k, v) in &self.labels {
            key.push('{');
            key.push_str(k);
            key.push('=');
            key.push_str(v);
            key.push('}');
        }
        key
    }

    /// The value of the label `name`, when present.
    pub fn label(&self, name: &str) -> Option<&str> {
        self.labels
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Everything a validated exposition holds, for assertions in smokes.
#[derive(Debug, Clone, Default)]
pub struct Exposition {
    /// All sample lines in source order.
    pub samples: Vec<Sample>,
    /// `# TYPE` declarations: metric name → declared type.
    pub types: BTreeMap<String, String>,
}

impl Exposition {
    /// All samples of one metric name.
    pub fn series(&self, name: &str) -> Vec<&Sample> {
        self.samples.iter().filter(|s| s.name == name).collect()
    }

    /// The single sample of an unlabelled metric, when present.
    pub fn value(&self, name: &str) -> Option<f64> {
        self.samples
            .iter()
            .find(|s| s.name == name && s.labels.is_empty())
            .map(|s| s.value)
    }

    /// Names declared `# TYPE … histogram`.
    pub fn histogram_names(&self) -> Vec<&str> {
        self.types
            .iter()
            .filter(|(_, t)| t.as_str() == "histogram")
            .map(|(n, _)| n.as_str())
            .collect()
    }
}

/// Parses an exposition without semantic checks.
///
/// # Errors
///
/// Returns a message naming the first malformed line.
pub fn parse(text: &str) -> Result<Exposition, String> {
    let mut exp = Exposition::default();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut it = rest.split_whitespace();
            let name = it
                .next()
                .ok_or_else(|| format!("line {}: TYPE without a name", lineno + 1))?;
            let ty = it
                .next()
                .ok_or_else(|| format!("line {}: TYPE {name} without a type", lineno + 1))?;
            if exp.types.insert(name.to_string(), ty.to_string()).is_some() {
                return Err(format!("line {}: duplicate TYPE for {name}", lineno + 1));
            }
            continue;
        }
        if line.starts_with('#') {
            continue; // other comments are legal and ignored
        }
        exp.samples.push(parse_sample(line, lineno + 1)?);
    }
    Ok(exp)
}

fn parse_sample(line: &str, lineno: usize) -> Result<Sample, String> {
    let err = |what: &str| format!("line {lineno}: {what}: {line}");
    let (name_labels, value) = line
        .rsplit_once(' ')
        .ok_or_else(|| err("sample without a value"))?;
    let value = match value {
        "+Inf" => f64::INFINITY,
        "-Inf" => f64::NEG_INFINITY,
        "NaN" => f64::NAN,
        v => v.parse().map_err(|_| err("unparseable value"))?,
    };
    let (name, labels) = match name_labels.split_once('{') {
        None => (name_labels.to_string(), Vec::new()),
        Some((name, rest)) => {
            let body = rest
                .strip_suffix('}')
                .ok_or_else(|| err("unterminated label set"))?;
            let mut labels = Vec::new();
            for pair in body.split(',').filter(|p| !p.is_empty()) {
                let (k, v) = pair.split_once('=').ok_or_else(|| err("label without ="))?;
                let v = v
                    .strip_prefix('"')
                    .and_then(|v| v.strip_suffix('"'))
                    .ok_or_else(|| err("unquoted label value"))?;
                labels.push((k.to_string(), v.to_string()));
            }
            (name.to_string(), labels)
        }
    };
    if name.is_empty()
        || !name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
    {
        return Err(err("invalid metric name"));
    }
    Ok(Sample {
        name,
        labels,
        value,
    })
}

/// Parses **and validates** an exposition:
///
/// * no duplicate series (same name + label set),
/// * every declared histogram has `_bucket`/`_sum`/`_count` samples,
/// * histogram buckets are monotone in both `le` bound and cumulative
///   count, end with `le="+Inf"`, and the `+Inf` count equals `_count`,
/// * sample values are finite and non-negative (counters and nanosecond
///   histograms never go negative).
///
/// # Errors
///
/// Returns a message describing the first violation.
pub fn validate(text: &str) -> Result<Exposition, String> {
    let exp = parse(text)?;
    let mut seen = HashSet::new();
    for s in &exp.samples {
        if !seen.insert(s.series_key()) {
            return Err(format!("duplicate series: {}", s.series_key()));
        }
        if !s.value.is_finite() || s.value < 0.0 {
            return Err(format!(
                "series {} has non-finite or negative value {}",
                s.series_key(),
                s.value
            ));
        }
    }
    for name in exp.histogram_names() {
        let buckets: Vec<&Sample> = exp.series(&format!("{name}_bucket"));
        if buckets.is_empty() {
            return Err(format!("histogram {name} has no _bucket samples"));
        }
        let mut last_le = f64::NEG_INFINITY;
        let mut last_count = 0.0f64;
        for (i, b) in buckets.iter().enumerate() {
            let le = b
                .label("le")
                .ok_or_else(|| format!("histogram {name} bucket without le"))?;
            let bound = if le == "+Inf" {
                if i != buckets.len() - 1 {
                    return Err(format!("histogram {name}: le=\"+Inf\" is not last"));
                }
                f64::INFINITY
            } else {
                le.parse::<f64>()
                    .map_err(|_| format!("histogram {name}: unparseable le bound {le}"))?
            };
            if bound <= last_le {
                return Err(format!("histogram {name}: non-monotone le bounds"));
            }
            if b.value < last_count {
                return Err(format!("histogram {name}: non-monotone bucket counts"));
            }
            last_le = bound;
            last_count = b.value;
        }
        if buckets.last().map(|b| b.label("le")) != Some(Some("+Inf")) {
            return Err(format!("histogram {name}: missing le=\"+Inf\" bucket"));
        }
        let count = exp
            .value(&format!("{name}_count"))
            .ok_or_else(|| format!("histogram {name} has no _count"))?;
        exp.value(&format!("{name}_sum"))
            .ok_or_else(|| format!("histogram {name} has no _sum"))?;
        if (last_count - count).abs() > 0.0 {
            return Err(format!(
                "histogram {name}: +Inf bucket {last_count} != _count {count}"
            ));
        }
    }
    Ok(exp)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hist::Histogram;
    use crate::registry::MetricsSnapshot;

    fn sample_exposition() -> String {
        let mut snap = MetricsSnapshot::default();
        snap.push_counter("server.requests", 42);
        snap.push_gauge("server.uptime.seconds", 3.25);
        let h = Histogram::new();
        for v in [3u64, 90, 90, 4096, 123_456_789] {
            h.record(v);
        }
        snap.push_hist("req.total.nanos", h.snapshot());
        snap.to_prometheus()
    }

    #[test]
    fn rendered_exposition_validates() {
        let text = sample_exposition();
        let exp = validate(&text).expect("valid exposition");
        assert_eq!(exp.value("cayman_server_requests"), Some(42.0));
        assert_eq!(exp.value("cayman_req_total_nanos_count"), Some(5.0));
        assert_eq!(exp.histogram_names(), vec!["cayman_req_total_nanos"]);
        let buckets = exp.series("cayman_req_total_nanos_bucket");
        assert!(buckets.len() >= 4, "non-empty buckets plus +Inf");
        assert_eq!(buckets.last().unwrap().label("le"), Some("+Inf"));
    }

    #[test]
    fn duplicate_series_is_rejected() {
        let mut text = sample_exposition();
        text.push_str("cayman_server_requests 43\n");
        let err = validate(&text).expect_err("duplicate must fail");
        assert!(err.contains("duplicate series"), "{err}");
    }

    #[test]
    fn non_monotone_buckets_are_rejected() {
        let text = "# TYPE h histogram\n\
                    h_bucket{le=\"10\"} 5\n\
                    h_bucket{le=\"20\"} 3\n\
                    h_bucket{le=\"+Inf\"} 5\n\
                    h_sum 50\nh_count 5\n";
        let err = validate(text).expect_err("non-monotone counts must fail");
        assert!(err.contains("non-monotone bucket counts"), "{err}");

        let text = "# TYPE h histogram\n\
                    h_bucket{le=\"20\"} 3\n\
                    h_bucket{le=\"10\"} 5\n\
                    h_bucket{le=\"+Inf\"} 5\n\
                    h_sum 50\nh_count 5\n";
        let err = validate(text).expect_err("non-monotone bounds must fail");
        assert!(err.contains("non-monotone le bounds"), "{err}");
    }

    #[test]
    fn inf_bucket_must_match_count() {
        let text = "# TYPE h histogram\n\
                    h_bucket{le=\"10\"} 5\n\
                    h_bucket{le=\"+Inf\"} 5\n\
                    h_sum 50\nh_count 6\n";
        let err = validate(text).expect_err("count mismatch must fail");
        assert!(err.contains("!= _count"), "{err}");
    }

    #[test]
    fn malformed_lines_are_rejected() {
        assert!(parse("name_only\n").is_err());
        assert!(parse("h_bucket{le=\"1\" 3\n").is_err());
        assert!(parse("h_bucket{le=1} 3\n").is_err());
        assert!(parse("bad name 3\n").is_err());
    }
}
