//! A bounded top-k candidate pool for "most expensive N" breakdowns.

use std::sync::Mutex;

/// A thread-shared pool that keeps roughly the top-`cap` items by a
/// caller-supplied ordering, with memory bounded at `4 * cap`: pushes are
/// cheap appends, and once the pool grows well past `cap` the cheap tail is
/// dropped. [`TopPool::snapshot`] returns the exact, fully sorted top-`cap`.
pub struct TopPool<T> {
    cap: usize,
    /// Total ordering: greater-first (`a` before `b` when
    /// `cmp(a, b) == Less` is *not* how it reads — `cmp` returns the order
    /// in which items should appear, so "most expensive" compares Less).
    cmp: fn(&T, &T) -> std::cmp::Ordering,
    items: Mutex<Vec<T>>,
}

impl<T: Clone> TopPool<T> {
    /// Creates a pool keeping the first `cap` items under `cmp` order
    /// (items that compare `Less` sort first and survive truncation).
    pub fn new(cap: usize, cmp: fn(&T, &T) -> std::cmp::Ordering) -> Self {
        TopPool {
            cap,
            cmp,
            items: Mutex::new(Vec::new()),
        }
    }

    /// Appends one candidate; amortised O(1), occasionally sorting and
    /// truncating to keep memory bounded.
    pub fn push(&self, item: T) {
        let mut pool = self.items.lock().expect("pool mutex poisoned");
        pool.push(item);
        if pool.len() > 4 * self.cap {
            pool.sort_unstable_by(self.cmp);
            pool.truncate(self.cap);
        }
    }

    /// The exact top-`cap`, sorted under `cmp`.
    pub fn snapshot(&self) -> Vec<T> {
        let mut pool = self.items.lock().expect("pool mutex poisoned").clone();
        pool.sort_unstable_by(self.cmp);
        pool.truncate(self.cap);
        pool
    }
}

impl<T> std::fmt::Debug for TopPool<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TopPool").field("cap", &self.cap).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_exact_top_k_under_overflow() {
        let pool: TopPool<u64> = TopPool::new(4, |a, b| b.cmp(a));
        for i in 0..100 {
            // Insertion order scrambled so truncation sees mixed values.
            pool.push((i * 37) % 100);
        }
        assert_eq!(pool.snapshot(), vec![99, 98, 97, 96]);
    }
}
