//! The global **metric registry**: named counters, gauges and
//! [`Histogram`]s that are *always on* (unlike the event recorder, which
//! only collects when tracing is enabled).
//!
//! Call sites register once ([`hist`], [`counter_handle`],
//! [`gauge_handle`]) and keep the returned `&'static` handle; recording
//! through a handle is a plain atomic operation — no lock, no allocation,
//! no registry lookup. Registration itself takes the registry lock and
//! leaks one small allocation per distinct name, which is the price of
//! handing out `'static` handles.
//!
//! [`snapshot`] freezes every registered metric into a
//! [`MetricsSnapshot`]; callers may append their own series (server
//! counters, store/cache stats) before rendering the whole thing as a
//! Prometheus-style text exposition with
//! [`MetricsSnapshot::to_prometheus`].

use crate::hist::{HistSnapshot, Histogram};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

#[derive(Default)]
struct Registry {
    hists: Mutex<Vec<(&'static str, &'static Histogram)>>,
    counters: Mutex<Vec<(&'static str, &'static AtomicU64)>>,
    gauges: Mutex<Vec<(&'static str, &'static AtomicU64)>>, // f64 bits
}

fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(Registry::default)
}

/// The registered histogram named `name`, registering an empty one on
/// first use. The registry is process-global and entries live forever:
/// fetch the handle once (startup / struct field), record through it on
/// the hot path.
pub fn hist(name: &'static str) -> &'static Histogram {
    let mut hists = registry().hists.lock().expect("metric registry poisoned");
    if let Some((_, h)) = hists.iter().find(|(n, _)| *n == name) {
        return h;
    }
    let h: &'static Histogram = Box::leak(Box::new(Histogram::new()));
    hists.push((name, h));
    h
}

/// The registered counter named `name` (a monotone `u64`; increment with
/// `fetch_add`), registering a zeroed one on first use.
pub fn counter_handle(name: &'static str) -> &'static AtomicU64 {
    let mut counters = registry()
        .counters
        .lock()
        .expect("metric registry poisoned");
    if let Some((_, c)) = counters.iter().find(|(n, _)| *n == name) {
        return c;
    }
    let c: &'static AtomicU64 = Box::leak(Box::new(AtomicU64::new(0)));
    counters.push((name, c));
    c
}

/// The registered gauge named `name` (an absolute `f64`, stored as bits;
/// set with [`set_gauge`]), registering a zeroed one on first use.
pub fn gauge_handle(name: &'static str) -> &'static AtomicU64 {
    let mut gauges = registry().gauges.lock().expect("metric registry poisoned");
    if let Some((_, g)) = gauges.iter().find(|(n, _)| *n == name) {
        return g;
    }
    let g: &'static AtomicU64 = Box::leak(Box::new(AtomicU64::new(0f64.to_bits())));
    gauges.push((name, g));
    g
}

/// Stores `value` into a gauge handle.
#[inline]
pub fn set_gauge(gauge: &AtomicU64, value: f64) {
    gauge.store(value.to_bits(), Ordering::Relaxed);
}

/// Freezes every registered metric, in registration order.
pub fn snapshot() -> MetricsSnapshot {
    let reg = registry();
    let hists = reg
        .hists
        .lock()
        .expect("metric registry poisoned")
        .iter()
        .map(|(n, h)| (n.to_string(), h.snapshot()))
        .collect();
    let counters = reg
        .counters
        .lock()
        .expect("metric registry poisoned")
        .iter()
        .map(|(n, c)| (n.to_string(), c.load(Ordering::Relaxed)))
        .collect();
    let gauges = reg
        .gauges
        .lock()
        .expect("metric registry poisoned")
        .iter()
        .map(|(n, g)| (n.to_string(), f64::from_bits(g.load(Ordering::Relaxed))))
        .collect();
    MetricsSnapshot {
        counters,
        gauges,
        hists,
    }
}

/// A frozen set of named metrics, extendable with caller-owned series
/// before rendering.
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    /// Monotone counters.
    pub counters: Vec<(String, u64)>,
    /// Absolute values.
    pub gauges: Vec<(String, f64)>,
    /// Latency/size distributions.
    pub hists: Vec<(String, HistSnapshot)>,
}

impl MetricsSnapshot {
    /// Appends a counter series (e.g. a server or store lifetime counter).
    pub fn push_counter(&mut self, name: impl Into<String>, value: u64) {
        self.counters.push((name.into(), value));
    }

    /// Appends a gauge series.
    pub fn push_gauge(&mut self, name: impl Into<String>, value: f64) {
        self.gauges.push((name.into(), value));
    }

    /// Appends a histogram series.
    pub fn push_hist(&mut self, name: impl Into<String>, snap: HistSnapshot) {
        self.hists.push((name.into(), snap));
    }

    /// Renders the snapshot as a Prometheus-style text exposition.
    ///
    /// Every metric name is prefixed `cayman_` and sanitized (characters
    /// outside `[a-zA-Z0-9_:]` become `_`). Counters render as one sample
    /// with a `# TYPE … counter` header, gauges as `# TYPE … gauge`, and
    /// each histogram as `# TYPE … histogram` with cumulative
    /// `…_bucket{le="…"}` samples over its non-empty buckets (the `le`
    /// bound is the bucket's inclusive upper value), a final
    /// `le="+Inf"` bucket, and `…_sum` / `…_count` samples. Values are
    /// raw recorded units (the server records nanoseconds and says so in
    /// the metric name).
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for (name, value) in &self.counters {
            let name = metric_name(name);
            let _ = writeln!(out, "# TYPE {name} counter");
            let _ = writeln!(out, "{name} {value}");
        }
        for (name, value) in &self.gauges {
            let name = metric_name(name);
            let _ = writeln!(out, "# TYPE {name} gauge");
            let _ = writeln!(out, "{name} {}", fmt_value(*value));
        }
        for (name, snap) in &self.hists {
            let name = metric_name(name);
            let _ = writeln!(out, "# TYPE {name} histogram");
            let mut cumulative = 0u64;
            for b in snap.buckets() {
                cumulative += b.count;
                let _ = writeln!(out, "{name}_bucket{{le=\"{}\"}} {cumulative}", b.hi);
            }
            let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", snap.count());
            let _ = writeln!(out, "{name}_sum {}", snap.sum());
            let _ = writeln!(out, "{name}_count {}", snap.count());
        }
        out
    }
}

/// `cayman_`-prefixed, exposition-safe metric name.
fn metric_name(raw: &str) -> String {
    let mut out = String::with_capacity(raw.len() + 7);
    out.push_str("cayman_");
    for c in raw.chars() {
        if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

fn fmt_value(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else if v.is_nan() {
        "NaN".to_string()
    } else if v > 0.0 {
        "+Inf".to_string()
    } else {
        "-Inf".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_are_stable_and_shared() {
        let a = hist("test.registry.hist");
        let b = hist("test.registry.hist");
        assert!(std::ptr::eq(a, b), "same name returns the same histogram");
        a.record(7);
        assert_eq!(b.count(), 1);

        let c = counter_handle("test.registry.counter");
        c.fetch_add(3, Ordering::Relaxed);
        assert!(std::ptr::eq(c, counter_handle("test.registry.counter")));

        let g = gauge_handle("test.registry.gauge");
        set_gauge(g, 2.5);

        let snap = snapshot();
        let hist_snap = &snap
            .hists
            .iter()
            .find(|(n, _)| n == "test.registry.hist")
            .expect("registered")
            .1;
        assert!(hist_snap.count() >= 1);
        assert!(snap
            .counters
            .iter()
            .any(|(n, v)| n == "test.registry.counter" && *v >= 3));
        assert!(snap
            .gauges
            .iter()
            .any(|(n, v)| n == "test.registry.gauge" && *v == 2.5));
    }

    #[test]
    fn prometheus_rendering_shape() {
        let mut snap = MetricsSnapshot::default();
        snap.push_counter("server.requests", 12);
        snap.push_gauge("server.uptime.seconds", 1.5);
        let h = Histogram::new();
        for v in [1u64, 1, 2, 1000] {
            h.record(v);
        }
        snap.push_hist("req.total.nanos", h.snapshot());
        let text = snap.to_prometheus();
        assert!(text.contains("# TYPE cayman_server_requests counter"));
        assert!(text.contains("cayman_server_requests 12"));
        assert!(text.contains("cayman_server_uptime_seconds 1.5"));
        assert!(text.contains("# TYPE cayman_req_total_nanos histogram"));
        assert!(text.contains("cayman_req_total_nanos_bucket{le=\"1\"} 2"));
        assert!(text.contains("cayman_req_total_nanos_bucket{le=\"+Inf\"} 4"));
        assert!(text.contains("cayman_req_total_nanos_sum 1004"));
        assert!(text.contains("cayman_req_total_nanos_count 4"));
        // cumulative buckets are monotone
        let mut last = 0u64;
        for line in text.lines().filter(|l| l.contains("_bucket{")) {
            let v: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(v >= last, "bucket counts must be cumulative: {line}");
            last = v;
        }
    }
}
