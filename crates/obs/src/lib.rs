//! # cayman-obs
//!
//! Dependency-free observability substrate for the whole Cayman pipeline:
//! one instrumentation mechanism shared by every crate, one artifact out.
//!
//! * **Spans** — hierarchical begin/end pairs ([`span!`],
//!   [`SpanGuard`], [`timed`]) recorded per thread with nanosecond
//!   timestamps. [`timed`] additionally returns the elapsed nanoseconds so
//!   per-run statistics snapshots (`SelectStats`, `PipelineStats`) are
//!   *views over the same measurement* rather than parallel `Instant`
//!   plumbing.
//! * **Counters / gauges / instants** — named numeric streams
//!   ([`counter`], [`gauge`], [`instant`], [`diag`]) that become Chrome
//!   counter tracks and instant markers.
//! * **Lanes** — [`lane`] names the calling thread (one lane per
//!   work-stealing worker in the trace viewer).
//! * **Histograms & metrics** — [`hist`] provides fixed-size log-bucketed
//!   (HDR-style) latency histograms whose record path is lock- and
//!   allocation-free, mergeable across threads and queryable for
//!   p50/p90/p99/max; [`registry`] holds the *always-on* named
//!   counter/gauge/histogram registry behind the Prometheus-style text
//!   exposition ([`registry::MetricsSnapshot::to_prometheus`]), and
//!   [`promtext`] parses/validates that exposition for CI gates.
//! * **Sinks** — [`drain`] freezes everything into a [`Trace`], exportable
//!   as (a) a human summary, (b) JSONL events, and (c) a Chrome
//!   trace-format file loadable in `chrome://tracing` / Perfetto.
//!   [`init_from_env`] / [`flush_to_env`] wire the `CAYMAN_TRACE`,
//!   `CAYMAN_OBS_JSONL` and `CAYMAN_OBS_SUMMARY` environment variables so
//!   binaries need exactly two calls.
//!
//! ## Cost model
//!
//! Tracing is **off by default**. Every recording entry point starts with a
//! single relaxed atomic load ([`enabled`]); when disabled, no event is
//! constructed, no argument expression of [`span!`] is evaluated, and no
//! allocation happens (verified by the `zero_overhead` test with a counting
//! global allocator). When enabled, events are appended to one of
//! [`STRIPES`] independently locked stripes picked by thread id, so worker
//! threads do not serialise on a global lock.
//!
//! Determinism: the recorder only *observes* — it never feeds back into
//! selection, profiling, or merging, so fronts and profiles are bit-identical
//! with tracing on or off.

mod export;
pub mod hist;
pub mod pool;
pub mod promtext;
mod recorder;
pub mod registry;
pub mod time;
pub mod trace;

pub use export::Trace;
pub use recorder::{
    counter, diag, disable, drain, enable, enabled, flush_to_env, gauge, init_from_env, instant,
    instant_with, lane, timed, timed_with, ArgValue, Event, EventKind, Name, SpanGuard, TimedSpan,
    STRIPES,
};
pub use time::thread_cpu_nanos;

/// Opens a span over the enclosing scope; the returned guard ends it on
/// drop. Near-zero cost when tracing is disabled: one relaxed atomic check,
/// and the argument expressions are **not** evaluated.
///
/// ```
/// let _g = cayman_obs::span!("select.dp");
/// let _g = cayman_obs::span!("select.task.bb", vertex = 7usize);
/// ```
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        if $crate::enabled() {
            $crate::SpanGuard::enter($name)
        } else {
            $crate::SpanGuard::noop()
        }
    };
    ($name:expr, $($k:ident = $v:expr),+ $(,)?) => {
        if $crate::enabled() {
            $crate::SpanGuard::enter_with(
                $name,
                vec![$((stringify!($k), $crate::ArgValue::from($v))),+],
            )
        } else {
            $crate::SpanGuard::noop()
        }
    };
}
