//! The global, lock-striped event recorder and its recording entry points.

use crate::export::Trace;
use std::cell::Cell;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Number of independently locked event stripes. A power of two so the
/// stripe pick is a mask; 16 matches the selection scheduler's worker-count
/// regime so concurrent workers rarely share a lock.
pub const STRIPES: usize = 16;

/// An event or span name: static for hot paths (no allocation), joined for
/// `prefix + static-suffix` names (per-pass spans), owned for labels only
/// computed when tracing is enabled.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Name {
    /// A `'static` name — the common, allocation-free case.
    Static(&'static str),
    /// Two static halves rendered back-to-back (`"normalize."` + pass name).
    Joined(&'static str, &'static str),
    /// A runtime-computed label (allocates; only build one when
    /// [`enabled`] is true).
    Owned(String),
}

impl fmt::Display for Name {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Name::Static(s) => f.write_str(s),
            Name::Joined(a, b) => {
                f.write_str(a)?;
                f.write_str(b)
            }
            Name::Owned(s) => f.write_str(s),
        }
    }
}

impl From<&'static str> for Name {
    fn from(s: &'static str) -> Self {
        Name::Static(s)
    }
}

impl From<(&'static str, &'static str)> for Name {
    fn from((a, b): (&'static str, &'static str)) -> Self {
        Name::Joined(a, b)
    }
}

impl From<String> for Name {
    fn from(s: String) -> Self {
        Name::Owned(s)
    }
}

/// A structured argument value attached to an event.
#[derive(Debug, Clone, PartialEq)]
pub enum ArgValue {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Float.
    F64(f64),
    /// Boolean.
    Bool(bool),
    /// String (allocates; only build when tracing is enabled).
    Str(String),
}

impl From<u64> for ArgValue {
    fn from(v: u64) -> Self {
        ArgValue::U64(v)
    }
}

impl From<usize> for ArgValue {
    fn from(v: usize) -> Self {
        ArgValue::U64(v as u64)
    }
}

impl From<u32> for ArgValue {
    fn from(v: u32) -> Self {
        ArgValue::U64(u64::from(v))
    }
}

impl From<i64> for ArgValue {
    fn from(v: i64) -> Self {
        ArgValue::I64(v)
    }
}

impl From<f64> for ArgValue {
    fn from(v: f64) -> Self {
        ArgValue::F64(v)
    }
}

impl From<bool> for ArgValue {
    fn from(v: bool) -> Self {
        ArgValue::Bool(v)
    }
}

impl From<String> for ArgValue {
    fn from(v: String) -> Self {
        ArgValue::Str(v)
    }
}

impl From<&str> for ArgValue {
    fn from(v: &str) -> Self {
        ArgValue::Str(v.to_string())
    }
}

/// What an [`Event`] records.
#[derive(Debug, Clone, PartialEq)]
pub enum EventKind {
    /// Span opened (`ph: "B"`).
    Begin,
    /// Span closed (`ph: "E"`).
    End,
    /// A named counter increment; exported cumulatively (`ph: "C"`).
    Counter {
        /// Amount added to the counter.
        delta: u64,
    },
    /// A named absolute value (`ph: "C"`).
    Gauge {
        /// The sampled value.
        value: f64,
    },
    /// A point-in-time marker (`ph: "i"`), e.g. a work steal.
    Instant,
    /// Names the calling thread's lane (`ph: "M"`, `thread_name`).
    Lane,
}

/// One recorded event.
#[derive(Debug, Clone)]
pub struct Event {
    /// Recorder-assigned thread id (dense, starting at 0).
    pub tid: u32,
    /// Per-thread sequence number — total order within a thread.
    pub seq: u32,
    /// Nanoseconds since the recorder's epoch (monotonic).
    pub ts_nanos: u64,
    /// What happened.
    pub kind: EventKind,
    /// Event name.
    pub name: Name,
    /// Structured arguments.
    pub args: Vec<(&'static str, ArgValue)>,
}

struct Recorder {
    epoch: Instant,
    stripes: [Mutex<Vec<Event>>; STRIPES],
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static RECORDER: OnceLock<Recorder> = OnceLock::new();
static NEXT_TID: AtomicU32 = AtomicU32::new(0);

thread_local! {
    static TID: Cell<u32> = const { Cell::new(u32::MAX) };
    static SEQ: Cell<u32> = const { Cell::new(0) };
}

fn recorder() -> &'static Recorder {
    RECORDER.get_or_init(|| Recorder {
        epoch: Instant::now(),
        stripes: std::array::from_fn(|_| Mutex::new(Vec::new())),
    })
}

fn thread_id() -> u32 {
    TID.with(|t| {
        let mut id = t.get();
        if id == u32::MAX {
            id = NEXT_TID.fetch_add(1, Ordering::Relaxed);
            t.set(id);
        }
        id
    })
}

fn push(kind: EventKind, name: Name, args: Vec<(&'static str, ArgValue)>) {
    let rec = recorder();
    let tid = thread_id();
    let seq = SEQ.with(|s| {
        let v = s.get();
        s.set(v.wrapping_add(1));
        v
    });
    let ts_nanos = rec.epoch.elapsed().as_nanos() as u64;
    let event = Event {
        tid,
        seq,
        ts_nanos,
        kind,
        name,
        args,
    };
    rec.stripes[tid as usize % STRIPES]
        .lock()
        .expect("obs stripe poisoned")
        .push(event);
}

/// Whether tracing is enabled — one relaxed atomic load, the only cost a
/// disabled recording call pays.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns the recorder on (idempotent). Events recorded before `enable` are
/// not retroactively created; events already collected are kept.
pub fn enable() {
    recorder(); // pin the epoch before the first event
    ENABLED.store(true, Ordering::Relaxed);
}

/// Turns the recorder off (idempotent). Already-collected events stay until
/// [`drain`].
pub fn disable() {
    ENABLED.store(false, Ordering::Relaxed);
}

/// Enables tracing when any observability environment variable is set:
/// `CAYMAN_TRACE=<chrome-trace.json>`, `CAYMAN_OBS_JSONL=<events.jsonl>` or
/// `CAYMAN_OBS_SUMMARY=1`. Returns whether tracing ended up enabled.
pub fn init_from_env() -> bool {
    let any = std::env::var_os("CAYMAN_TRACE").is_some()
        || std::env::var_os("CAYMAN_OBS_JSONL").is_some()
        || std::env::var_os("CAYMAN_OBS_SUMMARY").is_some();
    if any {
        enable();
    }
    any
}

/// Drains the recorder into the sinks named by the environment:
/// `CAYMAN_TRACE` gets the Chrome trace, `CAYMAN_OBS_JSONL` the JSONL event
/// log, and `CAYMAN_OBS_SUMMARY=1` prints the human summary to stderr.
/// Returns one `(what, destination)` pair per sink written.
pub fn flush_to_env() -> Vec<(&'static str, String)> {
    if !enabled() {
        return Vec::new();
    }
    let trace = drain();
    let mut written = Vec::new();
    if let Some(path) = std::env::var_os("CAYMAN_TRACE") {
        let path = std::path::PathBuf::from(path);
        if let Err(e) = std::fs::write(&path, trace.to_chrome()) {
            eprintln!("CAYMAN_TRACE: failed to write {}: {e}", path.display());
        } else {
            written.push(("chrome-trace", path.display().to_string()));
        }
    }
    if let Some(path) = std::env::var_os("CAYMAN_OBS_JSONL") {
        let path = std::path::PathBuf::from(path);
        if let Err(e) = std::fs::write(&path, trace.to_jsonl()) {
            eprintln!("CAYMAN_OBS_JSONL: failed to write {}: {e}", path.display());
        } else {
            written.push(("jsonl-events", path.display().to_string()));
        }
    }
    if std::env::var_os("CAYMAN_OBS_SUMMARY").is_some() {
        eprintln!("{}", trace.summary());
        written.push(("summary", "stderr".to_string()));
    }
    written
}

/// Freezes and clears everything recorded so far into a [`Trace`], sorted by
/// `(tid, seq)` so every thread's stream is in program order.
pub fn drain() -> Trace {
    let rec = recorder();
    let mut events = Vec::new();
    for stripe in &rec.stripes {
        events.append(&mut *stripe.lock().expect("obs stripe poisoned"));
    }
    events.sort_by_key(|e| (e.tid, e.seq));
    Trace { events }
}

/// RAII span: records `Begin` on construction (via [`span!`] or
/// [`SpanGuard::enter`]) and `End` on drop. The disabled form is a no-op
/// carrying no data.
#[must_use = "the span ends when the guard drops"]
pub struct SpanGuard {
    name: Option<Name>,
}

impl SpanGuard {
    /// Opens a span unconditionally (callers should check [`enabled`]
    /// first — the [`span!`] macro does).
    pub fn enter(name: impl Into<Name>) -> SpanGuard {
        let name = name.into();
        push(EventKind::Begin, name.clone(), Vec::new());
        SpanGuard { name: Some(name) }
    }

    /// Opens a span with structured arguments.
    pub fn enter_with(name: impl Into<Name>, args: Vec<(&'static str, ArgValue)>) -> SpanGuard {
        let name = name.into();
        push(EventKind::Begin, name.clone(), args);
        SpanGuard { name: Some(name) }
    }

    /// The disabled no-op guard.
    pub fn noop() -> SpanGuard {
        SpanGuard { name: None }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(name) = self.name.take() {
            push(EventKind::End, name, Vec::new());
        }
    }
}

/// A span that *always* measures elapsed time (stats need the number whether
/// or not tracing is on) and additionally emits `Begin`/`End` events when
/// tracing is enabled. This is the single measurement mechanism behind
/// `SelectStats` and `PipelineStats`.
#[must_use = "call finish() to read the elapsed time"]
pub struct TimedSpan {
    start: Instant,
    name: Option<Name>,
    traced: bool,
}

/// Starts a [`TimedSpan`]. Allocation-free when `name` is
/// [`Name::Static`]/[`Name::Joined`] and tracing is disabled.
pub fn timed(name: impl Into<Name>) -> TimedSpan {
    let traced = enabled();
    let name = name.into();
    if traced {
        push(EventKind::Begin, name.clone(), Vec::new());
    }
    TimedSpan {
        start: Instant::now(),
        name: Some(name),
        traced,
    }
}

/// [`timed`] with structured arguments on the `Begin` event (built only when
/// tracing is enabled).
pub fn timed_with(
    name: impl Into<Name>,
    args: impl FnOnce() -> Vec<(&'static str, ArgValue)>,
) -> TimedSpan {
    let traced = enabled();
    let name = name.into();
    if traced {
        push(EventKind::Begin, name.clone(), args());
    }
    TimedSpan {
        start: Instant::now(),
        name: Some(name),
        traced,
    }
}

impl TimedSpan {
    /// Closes the span and returns the elapsed nanoseconds.
    pub fn finish(mut self) -> u64 {
        let nanos = self.start.elapsed().as_nanos() as u64;
        if let Some(name) = self.name.take() {
            if self.traced {
                push(EventKind::End, name, Vec::new());
            }
        }
        nanos
    }
}

impl Drop for TimedSpan {
    fn drop(&mut self) {
        if let Some(name) = self.name.take() {
            if self.traced {
                push(EventKind::End, name, Vec::new());
            }
        }
    }
}

/// Adds `delta` to the named counter (exported as a cumulative Chrome
/// counter track). No-op when disabled.
#[inline]
pub fn counter(name: impl Into<Name>, delta: u64) {
    if enabled() {
        push(EventKind::Counter { delta }, name.into(), Vec::new());
    }
}

/// Samples an absolute value onto the named track. No-op when disabled.
#[inline]
pub fn gauge(name: impl Into<Name>, value: f64) {
    if enabled() {
        push(EventKind::Gauge { value }, name.into(), Vec::new());
    }
}

/// Records a point-in-time marker (e.g. one work steal). No-op when
/// disabled.
#[inline]
pub fn instant(name: impl Into<Name>) {
    if enabled() {
        push(EventKind::Instant, name.into(), Vec::new());
    }
}

/// [`instant`] with structured arguments (built only when enabled).
#[inline]
pub fn instant_with(name: impl Into<Name>, args: impl FnOnce() -> Vec<(&'static str, ArgValue)>) {
    if enabled() {
        push(EventKind::Instant, name.into(), args());
    }
}

/// A structured diagnostic from library code (libraries never print on their
/// own — anomalies flow through the event sink instead). Rendered as an
/// instant marker with a `message` argument.
#[inline]
pub fn diag(name: impl Into<Name>, message: impl FnOnce() -> String) {
    if enabled() {
        push(
            EventKind::Instant,
            name.into(),
            vec![("message", ArgValue::Str(message()))],
        );
    }
}

/// Names the calling thread's lane in the trace viewer (e.g.
/// `select.worker.3`). The label closure is only invoked when tracing is
/// enabled, so formatting costs nothing otherwise.
#[inline]
pub fn lane(label: impl FnOnce() -> String) {
    if enabled() {
        push(EventKind::Lane, Name::Owned(label()), Vec::new());
    }
}
