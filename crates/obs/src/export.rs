//! Export of a drained event stream as Chrome trace JSON, JSONL, and a
//! human-readable summary.

use crate::recorder::{ArgValue, Event, EventKind};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A frozen, per-thread-ordered snapshot of everything the recorder
/// collected, produced by [`crate::drain`].
pub struct Trace {
    /// Events sorted by `(tid, seq)`.
    pub events: Vec<Event>,
}

impl Trace {
    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Renders the trace in Chrome trace-event format (the JSON-object form
    /// with a `traceEvents` array), loadable in `chrome://tracing` and
    /// Perfetto. Spans become `B`/`E` pairs on the recording thread's lane,
    /// counters become cumulative `C` tracks, gauges absolute `C` tracks,
    /// instants `i` markers, and lane events `thread_name` metadata so each
    /// work-stealing worker gets a named lane.
    pub fn to_chrome(&self) -> String {
        let mut out = String::with_capacity(self.events.len() * 96 + 64);
        out.push_str("{\"traceEvents\":[\n");
        let mut first = true;
        let mut cumulative: BTreeMap<String, u64> = BTreeMap::new();
        for e in &self.events {
            let mut line = String::with_capacity(96);
            let ts = e.ts_nanos as f64 / 1000.0;
            match &e.kind {
                EventKind::Begin => {
                    write!(
                        line,
                        "{{\"name\":\"{}\",\"ph\":\"B\",\"ts\":{ts:.3},\"pid\":1,\"tid\":{}",
                        escape(&e.name.to_string()),
                        e.tid
                    )
                    .unwrap();
                    write_args(&mut line, &e.args);
                    line.push('}');
                }
                EventKind::End => {
                    write!(
                        line,
                        "{{\"name\":\"{}\",\"ph\":\"E\",\"ts\":{ts:.3},\"pid\":1,\"tid\":{}}}",
                        escape(&e.name.to_string()),
                        e.tid
                    )
                    .unwrap();
                }
                EventKind::Counter { delta } => {
                    let name = e.name.to_string();
                    let total = cumulative.entry(name.clone()).or_insert(0);
                    *total += delta;
                    write!(
                        line,
                        "{{\"name\":\"{}\",\"ph\":\"C\",\"ts\":{ts:.3},\"pid\":1,\"tid\":{},\
                         \"args\":{{\"value\":{}}}}}",
                        escape(&name),
                        e.tid,
                        *total
                    )
                    .unwrap();
                }
                EventKind::Gauge { value } => {
                    write!(
                        line,
                        "{{\"name\":\"{}\",\"ph\":\"C\",\"ts\":{ts:.3},\"pid\":1,\"tid\":{},\
                         \"args\":{{\"value\":{}}}}}",
                        escape(&e.name.to_string()),
                        e.tid,
                        fmt_f64(*value)
                    )
                    .unwrap();
                }
                EventKind::Instant => {
                    write!(
                        line,
                        "{{\"name\":\"{}\",\"ph\":\"i\",\"ts\":{ts:.3},\"pid\":1,\"tid\":{},\
                         \"s\":\"t\"",
                        escape(&e.name.to_string()),
                        e.tid
                    )
                    .unwrap();
                    write_args(&mut line, &e.args);
                    line.push('}');
                }
                EventKind::Lane => {
                    write!(
                        line,
                        "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{},\
                         \"args\":{{\"name\":\"{}\"}}}}",
                        e.tid,
                        escape(&e.name.to_string())
                    )
                    .unwrap();
                }
            }
            if !first {
                out.push_str(",\n");
            }
            first = false;
            out.push_str(&line);
        }
        out.push_str("\n],\"displayTimeUnit\":\"ms\"}\n");
        out
    }

    /// Renders one JSON object per line — the machine-readable event log.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::with_capacity(self.events.len() * 96);
        for e in &self.events {
            let kind = match &e.kind {
                EventKind::Begin => "begin",
                EventKind::End => "end",
                EventKind::Counter { .. } => "counter",
                EventKind::Gauge { .. } => "gauge",
                EventKind::Instant => "instant",
                EventKind::Lane => "lane",
            };
            write!(
                out,
                "{{\"tid\":{},\"seq\":{},\"ts_nanos\":{},\"kind\":\"{kind}\",\"name\":\"{}\"",
                e.tid,
                e.seq,
                e.ts_nanos,
                escape(&e.name.to_string())
            )
            .unwrap();
            match &e.kind {
                EventKind::Counter { delta } => write!(out, ",\"delta\":{delta}").unwrap(),
                EventKind::Gauge { value } => {
                    write!(out, ",\"value\":{}", fmt_f64(*value)).unwrap()
                }
                _ => {}
            }
            write_args(&mut out, &e.args);
            out.push_str("}\n");
        }
        out
    }

    /// Renders a human-readable summary: per-span total/self time and call
    /// counts, counter totals, and the set of named lanes.
    pub fn summary(&self) -> String {
        #[derive(Default)]
        struct SpanAgg {
            calls: u64,
            total_nanos: u64,
        }
        let mut spans: BTreeMap<String, SpanAgg> = BTreeMap::new();
        let mut counters: BTreeMap<String, u64> = BTreeMap::new();
        let mut lanes: Vec<String> = Vec::new();
        // Per-tid stack of (name, begin-ts) to pair B/E events.
        let mut stacks: BTreeMap<u32, Vec<(String, u64)>> = BTreeMap::new();
        for e in &self.events {
            match &e.kind {
                EventKind::Begin => stacks
                    .entry(e.tid)
                    .or_default()
                    .push((e.name.to_string(), e.ts_nanos)),
                EventKind::End => {
                    if let Some((name, begin)) = stacks.entry(e.tid).or_default().pop() {
                        let agg = spans.entry(name).or_default();
                        agg.calls += 1;
                        agg.total_nanos += e.ts_nanos.saturating_sub(begin);
                    }
                }
                EventKind::Counter { delta } => {
                    *counters.entry(e.name.to_string()).or_insert(0) += delta;
                }
                EventKind::Lane => lanes.push(e.name.to_string()),
                _ => {}
            }
        }
        let mut out = String::new();
        let _ = writeln!(
            out,
            "== cayman-obs summary ({} events) ==",
            self.events.len()
        );
        if !spans.is_empty() {
            let _ = writeln!(out, "spans:");
            let mut rows: Vec<_> = spans.into_iter().collect();
            rows.sort_by_key(|r| std::cmp::Reverse(r.1.total_nanos));
            for (name, agg) in rows {
                let _ = writeln!(
                    out,
                    "  {:<32} {:>8} calls  {:>12.3} ms",
                    name,
                    agg.calls,
                    agg.total_nanos as f64 / 1e6
                );
            }
        }
        if !counters.is_empty() {
            let _ = writeln!(out, "counters:");
            for (name, total) in counters {
                let _ = writeln!(out, "  {name:<32} {total:>12}");
            }
        }
        if !lanes.is_empty() {
            lanes.sort();
            let _ = writeln!(out, "lanes: {}", lanes.join(", "));
        }
        out
    }
}

fn write_args(out: &mut String, args: &[(&'static str, ArgValue)]) {
    if args.is_empty() {
        return;
    }
    out.push_str(",\"args\":{");
    for (i, (k, v)) in args.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{}\":", escape(k));
        match v {
            ArgValue::U64(n) => {
                let _ = write!(out, "{n}");
            }
            ArgValue::I64(n) => {
                let _ = write!(out, "{n}");
            }
            ArgValue::F64(f) => {
                let _ = write!(out, "{}", fmt_f64(*f));
            }
            ArgValue::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            ArgValue::Str(s) => {
                let _ = write!(out, "\"{}\"", escape(s));
            }
        }
    }
    out.push('}');
}

/// Formats an `f64` as valid JSON (no NaN/Infinity literals).
fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        let s = format!("{v}");
        // `{}` on a whole float prints without a dot; either form is valid
        // JSON, so keep it.
        s
    } else {
        "null".to_string()
    }
}

/// Escapes a string for inclusion in a JSON string literal.
pub(crate) fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}
