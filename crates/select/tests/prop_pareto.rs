//! Property-based tests of the Pareto machinery that Algorithm 1's
//! complexity bound and optimality-preservation rest on.

use cayman_select::{combine, filter, pareto, Solution};
use cayman_testkit::{prop_assert, prop_assert_eq, prop_check, Rng};

fn sol(area: f64, saved: f64) -> Solution {
    Solution {
        kernels: Vec::new(),
        area,
        saved_seconds: saved,
    }
}

/// Up to 60 random solutions with areas in `[0, 1e6)` and savings in
/// `[-1e-3, 1e-3)`.
fn gen_solutions(rng: &mut Rng) -> Vec<Solution> {
    (0..rng.range_usize(0, 60))
        .map(|_| sol(rng.range_f64(0.0, 1e6), rng.range_f64(-1e-3, 1e-3)))
        .collect()
}

/// `pareto` output is sorted, strictly dominating, and contains the input's
/// best saving.
#[test]
fn pareto_is_a_proper_front() {
    prop_check!(|rng| {
        let input = gen_solutions(rng);
        let best_in = input.iter().map(|s| s.saved_seconds).fold(0.0f64, f64::max);
        let out = pareto(input);
        prop_assert!(!out.is_empty());
        prop_assert_eq!(out[0].area, 0.0);
        for w in out.windows(2) {
            prop_assert!(w[1].area > w[0].area);
            prop_assert!(w[1].saved_seconds > w[0].saved_seconds);
        }
        let best_out = out.last().expect("non-empty").saved_seconds;
        prop_assert!(best_out >= best_in - 1e-15);
        Ok(())
    });
}

/// `filter` returns a subset, enforces α-spacing, keeps the empty solution,
/// and never discards the overall best.
#[test]
fn filter_preserves_the_best() {
    prop_check!(|rng| {
        let input = gen_solutions(rng);
        let alpha = rng.range_f64(1.01, 3.0);
        let front = pareto(input);
        let best = front.last().expect("non-empty").saved_seconds;
        let len_before = front.len();
        let out = filter(front, alpha);
        prop_assert!(out.len() <= len_before);
        prop_assert_eq!(out[0].area, 0.0);
        prop_assert!((out.last().expect("non-empty").saved_seconds - best).abs() < 1e-18);
        for w in out.windows(2) {
            if w[0].area > 0.0 {
                prop_assert!(
                    w[1].area >= alpha * w[0].area - 1e-9,
                    "spacing violated: {} then {}",
                    w[0].area,
                    w[1].area
                );
            }
        }
        Ok(())
    });
}

/// The kept-sequence length is logarithmic in the area range.
#[test]
fn filter_bounds_sequence_length() {
    prop_check!(|rng| {
        let input = gen_solutions(rng);
        let alpha = rng.range_f64(1.1, 2.0);
        let out = filter(pareto(input), alpha);
        // areas < 1e6; smallest non-zero kept could be tiny, so bound by the
        // ratio between largest and smallest kept non-zero areas.
        let nonzero: Vec<f64> = out.iter().map(|s| s.area).filter(|&a| a > 0.0).collect();
        if nonzero.len() >= 2 {
            let ratio = nonzero.last().expect("len>=2") / nonzero[0];
            let bound = ratio.log(alpha).ceil() as usize + 2;
            prop_assert!(
                nonzero.len() <= bound,
                "{} kept for ratio {ratio}",
                nonzero.len()
            );
        }
        Ok(())
    });
}

/// `⊗` is conservative: every output is a sum of one solution from each
/// side, and the combined best saving is at least the max of either side's
/// best (union with the empty solution is always available).
#[test]
fn combine_is_additive() {
    prop_check!(|rng| {
        let a = gen_solutions(rng);
        let b = gen_solutions(rng);
        let fa = filter(pareto(a), 1.1);
        let fb = filter(pareto(b), 1.1);
        let best_a = fa.last().expect("non-empty").saved_seconds;
        let best_b = fb.last().expect("non-empty").saved_seconds;
        let c = combine(&fa, &fb, 1.1);
        let best_c = c.last().expect("non-empty").saved_seconds;
        prop_assert!(best_c >= best_a.max(best_b) - 1e-18);
        // additivity of the best: it can't exceed the sum of both bests
        prop_assert!(best_c <= best_a + best_b + 1e-18);
        Ok(())
    });
}
