//! Property test: the selection Pareto front is *bit-identical* across
//! thread counts and schedulers for randomly generated workload shapes.
//!
//! [`TreeShape`] draws skewed wPST shapes — deep chains, wide fan-outs, hot
//! single subtrees — which are materialised into real IR modules, profiled,
//! and selected over with every combination of `threads ∈ {1, 2, 3, 8}` and
//! both parallel schedulers. Any divergence (a reordered float summation, a
//! steal interleaving leaking into the front, a miscounted vertex) fails the
//! property with a replayable seed, and the harness shrinks the shape toward
//! a minimal reproduction.

use cayman_analysis::access::{trip_count, AccessAnalysis};
use cayman_analysis::memdep::{analyse_loop_deps, LoopDeps};
use cayman_analysis::profile::Profile;
use cayman_analysis::scev::Scev;
use cayman_analysis::wpst::Wpst;
use cayman_hls::inputs::FuncInputs;
use cayman_ir::builder::{FunctionBuilder, ModuleBuilder};
use cayman_ir::interp::Interp;
use cayman_ir::{ArrayId, Module, Operand, Type};
use cayman_select::{run_selection, SchedKind, SelectOptions, Solution};
use cayman_testkit::tree::{FuncShape, TreeShape, MAX_CASE_ITERATIONS};
use cayman_testkit::{prop_assert, prop_assert_eq, prop_check};

/// Owned analysis state (module + wPST + profile + per-function analyses),
/// mirroring what the `cayman` facade computes for a real application.
struct App {
    module: Module,
    wpst: Wpst,
    profile: Profile,
    accesses: Vec<AccessAnalysis>,
    deps: Vec<Vec<LoopDeps>>,
    trips: Vec<Vec<f64>>,
    content_fps: Vec<u64>,
}

impl App {
    fn analyse(module: Module) -> App {
        module.verify().expect("generated module verifies");
        let wpst = Wpst::build(&module);
        let exec = Interp::new(&module)
            .run(&[])
            .expect("generated module runs");
        let profile = Profile::aggregate(&module, &wpst, &exec);
        let mut accesses = Vec::new();
        let mut deps = Vec::new();
        let mut trips = Vec::new();
        for f in module.function_ids() {
            let func = module.function(f);
            let ctx = &wpst.func_ctxs[f.index()];
            let mut scev = Scev::new(func, ctx);
            let aa = AccessAnalysis::run(&module, func, ctx, &mut scev);
            let dd = analyse_loop_deps(func, ctx, &mut scev, &aa);
            let tt: Vec<f64> = ctx
                .forest
                .ids()
                .map(|l| trip_count(&wpst, &profile, func, f, l).unwrap_or(1.0))
                .collect();
            accesses.push(aa);
            deps.push(dd);
            trips.push(tt);
        }
        let content_fps = module
            .functions
            .iter()
            .map(cayman_ir::fingerprint_function)
            .collect();
        App {
            module,
            wpst,
            profile,
            accesses,
            deps,
            trips,
            content_fps,
        }
    }

    fn inputs(&self) -> Vec<FuncInputs<'_>> {
        self.module
            .function_ids()
            .map(|f| FuncInputs {
                module: &self.module,
                func_id: f,
                ctx: &self.wpst.func_ctxs[f.index()],
                accesses: &self.accesses[f.index()],
                deps: &self.deps[f.index()],
                trips: &self.trips[f.index()],
                block_counts: &self.profile.block_counts[f.index()],
                content_fp: self.content_fps[f.index()],
            })
            .collect()
    }
}

/// Builds the loop nest `trips` (outermost first) around `body`, collecting
/// the induction variables of the enclosing loops.
fn nest(
    fb: &mut FunctionBuilder,
    trips: &[u32],
    idxs: &mut Vec<Operand>,
    body: &mut dyn FnMut(&mut FunctionBuilder, &[Operand]),
) {
    match trips.split_first() {
        None => body(fb, idxs),
        Some((&t, rest)) => fb.counted_loop(0, i64::from(t), 1, |fb, i| {
            idxs.push(i);
            nest(fb, rest, idxs, body);
            idxs.pop();
        }),
    }
}

/// The innermost body of one generated function: a load/multiply/accumulate
/// chain with `body_ops` extra float ops and an optional if/else diamond
/// keyed on the innermost index's parity (so both arms execute).
fn emit_body(fb: &mut FunctionBuilder, fs: &FuncShape, a: ArrayId, b: ArrayId, idxs: &[Operand]) {
    let av = fb.load_idx(a, idxs);
    let bv = fb.load_idx(b, idxs);
    let mut acc = fb.fmul(av, bv);
    for k in 0..fs.body_ops {
        acc = if k % 2 == 0 {
            fb.fadd(acc, av)
        } else {
            fb.fmul(acc, bv)
        };
    }
    if fs.diamond {
        let inner = idxs[idxs.len() - 1];
        let two = fb.iconst(2);
        let rem = fb.srem(inner, two);
        let zero = fb.iconst(0);
        let even = fb.icmp_eq(rem, zero);
        acc = fb.if_then_else_val(
            even,
            Type::F64,
            |fb| fb.fadd(acc, fb.fconst(1.0)),
            |fb| fb.fmul(acc, fb.fconst(0.5)),
        );
    }
    fb.store_idx(b, idxs, acc);
}

/// Materialises a [`TreeShape`] into a module: one function per
/// [`FuncShape`] (each reading one array and writing another), called in
/// order from `main`.
fn build_module(shape: &TreeShape) -> Module {
    let mut mb = ModuleBuilder::new("prop");
    let arrays: Vec<(ArrayId, ArrayId)> = shape
        .funcs
        .iter()
        .enumerate()
        .map(|(i, fs)| {
            let dims: Vec<usize> = fs.trips.iter().map(|&t| t as usize).collect();
            (
                mb.array(format!("a{i}"), Type::F64, &dims),
                mb.array(format!("b{i}"), Type::F64, &dims),
            )
        })
        .collect();
    let fids: Vec<_> = shape
        .funcs
        .iter()
        .zip(&arrays)
        .enumerate()
        .map(|(i, (fs, &(a, b)))| {
            mb.function(format!("f{i}"), &[], None, |fb| {
                let mut idxs = Vec::new();
                nest(fb, &fs.trips, &mut idxs, &mut |fb, idxs| {
                    emit_body(fb, fs, a, b, idxs)
                });
                fb.ret(None);
            })
        })
        .collect();
    mb.function("main", &[], None, |fb| {
        for &f in &fids {
            fb.call(f, &[], None);
        }
        fb.ret(None);
    });
    mb.finish()
}

fn fronts_identical(a: &[Solution], b: &[Solution]) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|(x, y)| {
            x.area.to_bits() == y.area.to_bits()
                && x.saved_seconds.to_bits() == y.saved_seconds.to_bits()
                && x.kernels.len() == y.kernels.len()
                && x.kernels
                    .iter()
                    .zip(&y.kernels)
                    .all(|(k, l)| k.node == l.node && k.design.blocks == l.design.blocks)
        })
}

#[test]
fn random_tree_shapes_select_identically_across_schedulers() {
    prop_check!(cases = 20, |rng| {
        let shape = TreeShape::arbitrary(rng);
        prop_assert!(
            shape.iterations() <= MAX_CASE_ITERATIONS,
            "generator broke its work bound: {} iterations",
            shape.iterations()
        );
        let app = App::analyse(build_module(&shape));
        let inputs = app.inputs();
        let seq = run_selection(
            &app.module,
            &app.wpst,
            &app.profile,
            &inputs,
            &SelectOptions::default(),
        );
        prop_assert_eq!(seq.stats.scheduler, "seq");
        for sched in [SchedKind::Static, SchedKind::WorkSteal] {
            for threads in [2usize, 3, 8] {
                let opts = SelectOptions {
                    threads,
                    sched,
                    ..Default::default()
                };
                let par = run_selection(&app.module, &app.wpst, &app.profile, &inputs, &opts);
                prop_assert!(
                    fronts_identical(&seq.pareto, &par.pareto),
                    "{sched:?} threads={threads} changed the front for {shape:?}"
                );
                prop_assert_eq!(par.visited, seq.visited);
                prop_assert_eq!(par.stats.pruned, seq.stats.pruned);
                prop_assert_eq!(par.configs_evaluated, seq.configs_evaluated);
            }
        }
        Ok(())
    });
}
