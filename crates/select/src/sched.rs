//! Deterministic work-stealing scheduler for the selection DP.
//!
//! The static splitter in [`crate::dp`] divides the thread budget over
//! *contiguous sibling chunks*, so a skewed wPST — one hot function, one
//! deep `ctrl-flow` chain — pins most of the work onto one chunk worker
//! while the rest go idle. This module replaces that with task parallelism:
//!
//! 1. **Plan** (caller thread): walk the unpruned wPST once and flatten it
//!    into a task graph. Every `bb` leaf and every `ctrl-flow` vertex's own
//!    `accel(v, R)` call — the model invocations, which dominate the run —
//!    becomes an independent task. Every internal vertex becomes an
//!    [`Inner`] with one *pre-allocated result slot per child* (plus one for
//!    its own `accel` result when it is `ctrl-flow`) and a pending counter.
//!    Pruned children are pre-filled at plan time.
//! 2. **Execute**: tasks are dealt round-robin onto per-worker
//!    `Mutex<VecDeque>` deques. Workers pop from the front of their own
//!    deque and steal from the back of a neighbour's when theirs drains;
//!    since the plan seeds every task up front and execution never enqueues
//!    new ones, a worker can exit as soon as all deques are empty.
//! 3. **Combine**: delivering a result into the last empty slot of an
//!    `Inner` makes its owner run the fold — `combine` over the slots
//!    *strictly in child order*, exactly the sequence `Engine::dp` executes
//!    — and cascade the folded front into the parent's slot, iteratively up
//!    the tree (no recursion, so deep `ctrl-flow` chains cannot overflow the
//!    stack).
//!
//! Determinism does not depend on the steal interleaving: each slot value is
//! a pure function of its subtree, the fold consumes slots in child order,
//! and `visited`/`pruned` are counted once during the single-threaded plan.
//! The resulting Pareto front is therefore bit-identical to the sequential
//! run for every thread count — the float summation order inside `combine`
//! never changes.

use crate::dp::Engine;
use crate::pareto::{combine, filter, pareto, Solution};
use crate::stats::{thread_cpu_nanos, AtomicStats};
use cayman_analysis::wpst::WpstNodeId;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Which engine evaluates independent wPST subtrees when
/// [`crate::SelectOptions::threads`] > 1. Both produce bit-identical fronts;
/// they differ only in how the thread budget chases the work.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedKind {
    /// Static contiguous chunking of siblings with a divided thread budget
    /// (the original splitter). Predictable, but a skewed tree leaves
    /// workers idle.
    Static,
    /// Work-stealing task scheduler (this module): model calls become tasks
    /// on per-worker deques, idle workers steal, results land in
    /// child-order slots.
    #[default]
    WorkSteal,
}

impl SchedKind {
    /// Reads `CAYMAN_SELECT_SCHED` (`static` or `steal`), defaulting to
    /// [`SchedKind::WorkSteal`]. Lets the bench binaries and CI flip
    /// schedulers without plumbing a flag through every entry point.
    pub fn from_env() -> SchedKind {
        match std::env::var("CAYMAN_SELECT_SCHED").as_deref() {
            Ok("static") => SchedKind::Static,
            _ => SchedKind::WorkSteal,
        }
    }

    /// Stable label for stats and bench output.
    pub fn label(self) -> &'static str {
        match self {
            SchedKind::Static => "static",
            SchedKind::WorkSteal => "steal",
        }
    }
}

/// Destination of a task result: an [`Inner`] index and a slot within it.
type Dest = (u32, u32);

/// An internal (non-`bb`, unpruned) wPST vertex awaiting its inputs.
struct Inner {
    /// Where this vertex's folded front goes; `None` for the root.
    parent: Option<Dest>,
    /// `ctrl-flow` vertices carry one extra trailing slot for their own
    /// `accel(v, R)` result, merged after the child fold exactly as in
    /// `Engine::dp`.
    ctrl: bool,
    /// One result per child, in child order (plus the `ctrl` slot). Pruned
    /// children are pre-filled at plan time.
    slots: Mutex<Vec<Option<Vec<Solution>>>>,
    /// Undelivered slots. The worker that delivers the last one folds.
    pending: AtomicUsize,
}

/// A unit of schedulable work. All tasks are seeded before workers start;
/// running a task never enqueues another (folds cascade inline), which is
/// what makes "exit when every deque is empty" a sound termination rule.
enum Task {
    /// A `bb` leaf: `F[v] = filter(pareto(accel(v, R)))` into `dest`.
    Bb { v: WpstNodeId, dest: Dest },
    /// A `ctrl-flow` vertex's own `accel(v, R)`, delivered raw into its
    /// trailing slot (the fold applies `pareto`/`filter` after extending).
    Accel { v: WpstNodeId, dest: Dest },
    /// An internal vertex whose slots were all pre-filled at plan time
    /// (every child pruned, or no children): just run its fold.
    Ready { inner: u32 },
}

impl Task {
    /// Trace span name for executing this task.
    fn trace_name(&self) -> &'static str {
        match self {
            Task::Bb { .. } => "select.task.bb",
            Task::Accel { .. } => "select.task.accel",
            Task::Ready { .. } => "select.task.fold",
        }
    }
}

/// Runs the DP over the whole wPST on `threads` work-stealing workers.
/// Called with `threads >= 2`; the sequential path stays in `Engine::dp`.
pub(crate) fn run_work_stealing(engine: &Engine<'_>, threads: usize) -> Vec<Solution> {
    let root = engine.wpst.root();
    if engine.profile.share(root) < engine.opts.prune_share {
        AtomicStats::add_usize(&engine.stats.pruned, 1);
        return vec![Solution::empty()];
    }
    // The root vertex is WpstKind::Root, never a bb; guard anyway so the
    // scheduler stays total over arbitrary trees.
    if engine.wpst.is_bb(root) {
        AtomicStats::add_usize(&engine.stats.visited, 1);
        return filter(pareto(engine.accel(root)), engine.opts.alpha);
    }
    let (inners, tasks) = plan(engine, root);

    let workers = threads.min(tasks.len()).max(1);
    let queues: Vec<Mutex<VecDeque<Task>>> =
        (0..workers).map(|_| Mutex::new(VecDeque::new())).collect();
    for (i, task) in tasks.into_iter().enumerate() {
        queues[i % workers]
            .lock()
            .expect("sched queue poisoned")
            .push_back(task);
    }

    let sched = Sched {
        engine,
        inners,
        queues,
        result: Mutex::new(None),
    };
    std::thread::scope(|scope| {
        for w in 0..workers {
            let sched = &sched;
            scope.spawn(move || sched.worker(w));
        }
    });
    sched
        .result
        .into_inner()
        .expect("sched result poisoned")
        .expect("root fold completed")
}

/// Flattens the unpruned wPST into the task graph. Single-threaded, so the
/// `visited`/`pruned` counts it records are identical to the sequential
/// run's regardless of how execution later interleaves.
fn plan(engine: &Engine<'_>, root: WpstNodeId) -> (Vec<Inner>, Vec<Task>) {
    let mut inners: Vec<Inner> = Vec::new();
    let mut tasks: Vec<Task> = Vec::new();
    // (vertex, destination of its folded front); vertices on the stack are
    // unpruned internal vertices, already counted as visited.
    let mut stack: Vec<(WpstNodeId, Option<Dest>)> = vec![(root, None)];
    AtomicStats::add_usize(&engine.stats.visited, 1);
    while let Some((v, parent)) = stack.pop() {
        let idx = inners.len() as u32;
        let children = &engine.wpst.node(v).children;
        let ctrl = engine.wpst.is_ctrl_flow(v);
        let mut slots: Vec<Option<Vec<Solution>>> = vec![None; children.len() + usize::from(ctrl)];
        let mut pending = 0usize;
        for (i, &u) in children.iter().enumerate() {
            let dest = (idx, i as u32);
            if engine.profile.share(u) < engine.opts.prune_share {
                AtomicStats::add_usize(&engine.stats.pruned, 1);
                slots[i] = Some(vec![Solution::empty()]);
            } else if engine.wpst.is_bb(u) {
                AtomicStats::add_usize(&engine.stats.visited, 1);
                tasks.push(Task::Bb { v: u, dest });
                pending += 1;
            } else {
                AtomicStats::add_usize(&engine.stats.visited, 1);
                stack.push((u, Some(dest)));
                pending += 1;
            }
        }
        if ctrl {
            tasks.push(Task::Accel {
                v,
                dest: (idx, children.len() as u32),
            });
            pending += 1;
        }
        if pending == 0 {
            tasks.push(Task::Ready { inner: idx });
        }
        inners.push(Inner {
            parent,
            ctrl,
            slots: Mutex::new(slots),
            pending: AtomicUsize::new(pending),
        });
    }
    (inners, tasks)
}

struct Sched<'e, 'a> {
    engine: &'e Engine<'a>,
    inners: Vec<Inner>,
    queues: Vec<Mutex<VecDeque<Task>>>,
    result: Mutex<Option<Vec<Solution>>>,
}

impl Sched<'_, '_> {
    fn worker(&self, w: usize) {
        // Name this thread's trace lane so every worker shows up as its own
        // row in chrome://tracing.
        cayman_obs::lane(|| format!("select.worker.{w}"));
        let cpu0 = thread_cpu_nanos();
        let mut t0 = cpu0;
        while let Some(task) = self.pop(w) {
            let span = cayman_obs::span!(task.trace_name());
            self.run_task(task);
            drop(span);
            // Per-task CPU time (including any fold cascade the task
            // triggered): the indivisible-work floor of the makespan model.
            let t1 = thread_cpu_nanos();
            self.engine.stats.record_task_nanos(t1.saturating_sub(t0));
            t0 = t1;
        }
        self.engine
            .stats
            .record_worker_busy(thread_cpu_nanos().saturating_sub(cpu0));
    }

    /// Pops from the front of the worker's own deque, or steals from the
    /// back of the first non-empty neighbour. `None` means every deque is
    /// empty — terminal, because execution never enqueues tasks.
    fn pop(&self, w: usize) -> Option<Task> {
        if let Some(task) = self.queues[w]
            .lock()
            .expect("sched queue poisoned")
            .pop_front()
        {
            return Some(task);
        }
        let n = self.queues.len();
        for k in 1..n {
            let victim = (w + k) % n;
            if let Some(task) = self.queues[victim]
                .lock()
                .expect("sched queue poisoned")
                .pop_back()
            {
                cayman_obs::instant_with("select.steal", || {
                    vec![("victim", cayman_obs::ArgValue::from(victim))]
                });
                return Some(task);
            }
        }
        None
    }

    fn run_task(&self, task: Task) {
        match task {
            Task::Bb { v, dest } => {
                let front = filter(pareto(self.engine.accel(v)), self.engine.opts.alpha);
                self.deliver(dest, front);
            }
            Task::Accel { v, dest } => {
                let designs = self.engine.accel(v);
                self.deliver(dest, designs);
            }
            Task::Ready { inner } => self.finish(inner),
        }
    }

    /// Writes a task result into its slot; the worker that fills the last
    /// slot of an [`Inner`] owns its fold.
    fn deliver(&self, (inner, slot): Dest, front: Vec<Solution>) {
        let node = &self.inners[inner as usize];
        node.slots.lock().expect("sched slots poisoned")[slot as usize] = Some(front);
        if node.pending.fetch_sub(1, Ordering::AcqRel) == 1 {
            self.finish(inner);
        }
    }

    /// Folds a completed vertex and cascades the result upward: each fold
    /// that completes its parent continues with the parent, iteratively, so
    /// a deep chain of `ctrl-flow` vertices folds in one loop instead of a
    /// recursion as deep as the tree.
    fn finish(&self, mut inner: u32) {
        loop {
            let node = &self.inners[inner as usize];
            let front = self.fold(node);
            match node.parent {
                None => {
                    *self.result.lock().expect("sched result poisoned") = Some(front);
                    return;
                }
                Some((p, slot)) => {
                    let parent = &self.inners[p as usize];
                    parent.slots.lock().expect("sched slots poisoned")[slot as usize] = Some(front);
                    if parent.pending.fetch_sub(1, Ordering::AcqRel) != 1 {
                        return;
                    }
                    inner = p;
                }
            }
        }
    }

    /// Exactly `Engine::dp`'s combine sequence over the pre-ordered slots:
    /// fold child fronts strictly in child order, then for `ctrl-flow`
    /// vertices extend with the raw `accel` designs and re-filter. Keeping
    /// this order is what makes the front bit-identical to sequential.
    fn fold(&self, node: &Inner) -> Vec<Solution> {
        let mut slots = std::mem::take(&mut *node.slots.lock().expect("sched slots poisoned"));
        let alpha = self.engine.opts.alpha;
        let nchildren = slots.len() - usize::from(node.ctrl);
        let t0 = cayman_obs::timed("select.combine");
        let mut f = vec![Solution::empty()];
        for fu in &slots[..nchildren] {
            f = combine(&f, fu.as_ref().expect("child front delivered"), alpha);
        }
        AtomicStats::add_u64(&self.engine.stats.combine_nanos, t0.finish());
        if node.ctrl {
            let accel = slots[nchildren].take().expect("accel slot delivered");
            let mut all = f;
            all.extend(accel);
            let t1 = cayman_obs::timed("select.combine");
            f = filter(pareto(all), alpha);
            AtomicStats::add_u64(&self.engine.stats.combine_nanos, t1.finish());
        }
        f
    }
}
