//! Solutions, Pareto-optimal sequences, the α-spacing `filter`, and the `⊗`
//! combination operator of Algorithm 1.

use cayman_analysis::wpst::WpstNodeId;
use cayman_hls::design::AcceleratorDesign;
use cayman_ir::cpu_model::CPU_FREQ_HZ;

/// One selected kernel: a wPST vertex plus its accelerator configuration.
#[derive(Debug, Clone)]
pub struct SelectedKernel {
    /// The selected region vertex.
    pub node: WpstNodeId,
    /// Its configured accelerator.
    pub design: AcceleratorDesign,
}

/// A selection solution: a set of non-overlapping kernels with accelerator
/// configurations (the `φ` of §III-D).
#[derive(Debug, Clone, Default)]
pub struct Solution {
    /// The selected kernels.
    pub kernels: Vec<SelectedKernel>,
    /// Total accelerator area.
    pub area: f64,
    /// Total wall-clock seconds saved (`Σ T_cand − Cycle_cand/F`).
    pub saved_seconds: f64,
}

impl Solution {
    /// The empty solution (select nothing): area 0, no gain.
    pub fn empty() -> Self {
        Solution::default()
    }

    /// A single-kernel solution.
    pub fn single(node: WpstNodeId, design: AcceleratorDesign) -> Self {
        let area = design.area;
        let saved = design.saved_seconds();
        Solution {
            kernels: vec![SelectedKernel { node, design }],
            area,
            saved_seconds: saved,
        }
    }

    /// Union of two solutions (disjoint kernel sets by construction of the
    /// DP): areas and savings add.
    pub fn union(&self, other: &Solution) -> Solution {
        let mut kernels = self.kernels.clone();
        kernels.extend(other.kernels.iter().cloned());
        Solution {
            kernels,
            area: self.area + other.area,
            saved_seconds: self.saved_seconds + other.saved_seconds,
        }
    }

    /// Overall application speedup per Eq. (1):
    /// `T_all / (T_all − T_cand + Cycle_cand/F)` — equivalently
    /// `T_all / (T_all − saved_seconds)`.
    ///
    /// `total_cycles` is the profiled whole-program CPU cycle count.
    pub fn speedup(&self, total_cycles: u64) -> f64 {
        let t_all = total_cycles as f64 / CPU_FREQ_HZ;
        let remaining = (t_all - self.saved_seconds).max(f64::MIN_POSITIVE);
        t_all / remaining
    }

    /// Aggregate `#SB` / `#PR` over all kernels.
    pub fn sb_pr(&self) -> (usize, usize) {
        let mut sb = 0;
        let mut pr = 0;
        for k in &self.kernels {
            sb += k.design.seq_blocks;
            pr += k.design.pipelined.len();
        }
        (sb, pr)
    }

    /// Aggregate interface counts `(#C, #D, #S, #LB)` over all kernels.
    /// `#S` covers the scratchpad family (plain, banked, double-buffered).
    pub fn iface_counts(&self) -> (usize, usize, usize, usize) {
        let mut t = (0, 0, 0, 0);
        for k in &self.kernels {
            let (c, d, s, lb) = k.design.iface_counts();
            t.0 += c;
            t.1 += d;
            t.2 += s;
            t.3 += lb;
        }
        t
    }
}

/// Produces the Pareto-optimal sequence of `solutions`, sorted by increasing
/// area, keeping only solutions with strictly increasing savings.
///
/// The empty solution is always re-inserted so that "select nothing from this
/// subtree" remains available to the `⊗` operator.
pub fn pareto(mut solutions: Vec<Solution>) -> Vec<Solution> {
    solutions.push(Solution::empty());
    solutions.sort_by(|a, b| {
        a.area
            .partial_cmp(&b.area)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(
                b.saved_seconds
                    .partial_cmp(&a.saved_seconds)
                    .unwrap_or(std::cmp::Ordering::Equal),
            )
    });
    let mut out: Vec<Solution> = Vec::new();
    let mut best = f64::NEG_INFINITY;
    for s in solutions {
        if s.saved_seconds > best || out.is_empty() {
            best = best.max(s.saved_seconds);
            // Keep only if it strictly improves over the last kept solution.
            if out
                .last()
                .map(|l| s.saved_seconds > l.saved_seconds)
                .unwrap_or(true)
            {
                out.push(s);
            }
        }
    }
    out
}

/// The α-spacing `filter` of Algorithm 1: thins a Pareto sequence so that
/// every neighbouring pair of kept solutions differs in area by more than a
/// factor of `α`, bounding the sequence length to `log_α(A)`.
///
/// Within each α-band the *highest-saving* representative is kept (a
/// backward greedy from the largest solution): in a Pareto sequence that is
/// the largest-area member of the band, so no strictly better solution is
/// ever discarded in favour of a worse neighbour.
///
/// The input must already be a Pareto sequence (sorted by increasing area).
/// The empty solution (area 0) is always kept.
pub fn filter(solutions: Vec<Solution>, alpha: f64) -> Vec<Solution> {
    debug_assert!(alpha > 1.0, "alpha must exceed 1");
    if solutions.is_empty() {
        return solutions;
    }
    let mut keep = vec![false; solutions.len()];
    let mut bound = f64::INFINITY;
    for (i, s) in solutions.iter().enumerate().rev() {
        if s.area <= bound || s.area == 0.0 {
            keep[i] = true;
            if s.area > 0.0 {
                bound = s.area / alpha;
            }
        }
    }
    solutions
        .into_iter()
        .zip(keep)
        .filter_map(|(s, k)| k.then_some(s))
        .collect()
}

/// The `⊗` operator: all pairwise unions of two Pareto sequences, re-reduced.
pub fn combine(a: &[Solution], b: &[Solution], alpha: f64) -> Vec<Solution> {
    let mut out = Vec::with_capacity(a.len() * b.len());
    for x in a {
        for y in b {
            out.push(x.union(y));
        }
    }
    filter(pareto(out), alpha)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sol(area: f64, saved: f64) -> Solution {
        Solution {
            kernels: Vec::new(),
            area,
            saved_seconds: saved,
        }
    }

    #[test]
    fn pareto_drops_dominated() {
        let s = pareto(vec![
            sol(10.0, 5.0),
            sol(20.0, 4.0), // dominated: more area, less saved
            sol(30.0, 9.0),
            sol(5.0, 1.0),
        ]);
        let areas: Vec<f64> = s.iter().map(|x| x.area).collect();
        assert_eq!(areas, vec![0.0, 5.0, 10.0, 30.0]);
        // savings strictly increase
        for w in s.windows(2) {
            assert!(w[1].saved_seconds > w[0].saved_seconds);
        }
    }

    #[test]
    fn pareto_always_contains_empty() {
        let s = pareto(vec![sol(10.0, 5.0)]);
        assert_eq!(s[0].area, 0.0);
        assert_eq!(s[0].saved_seconds, 0.0);
        // negative-saving solutions are dominated by empty
        let s = pareto(vec![sol(10.0, -5.0)]);
        assert_eq!(s.len(), 1);
        assert_eq!(s[0].area, 0.0);
    }

    #[test]
    fn filter_enforces_alpha_spacing() {
        let seq = pareto(
            (1..=100)
                .map(|i| sol(i as f64, i as f64))
                .collect::<Vec<_>>(),
        );
        let f = filter(seq, 1.5);
        // every neighbouring pair (past the empty) spaced by ≥ 1.5×
        for w in f.windows(2) {
            if w[0].area > 0.0 {
                assert!(
                    w[1].area >= 1.5 * w[0].area,
                    "{} vs {}",
                    w[0].area,
                    w[1].area
                );
            }
        }
        // log_1.5(100) ≈ 11.4 → at most ~13 survivors incl. empty and first
        assert!(f.len() <= 14, "{}", f.len());
        // the best solution is always retained
        assert_eq!(f.last().expect("non-empty").area, 100.0);
    }

    #[test]
    fn filter_keeps_best_in_band() {
        // a slightly bigger but much better solution must survive even when
        // its area is within α of a worse neighbour
        let seq = pareto(vec![sol(100.0, 1.0), sol(105.0, 50.0)]);
        let f = filter(seq, 1.1);
        assert!(
            f.iter().any(|s| (s.saved_seconds - 50.0).abs() < 1e-12),
            "best solution dropped: {f:?}"
        );
    }

    #[test]
    fn combine_adds_areas_and_savings() {
        let a = pareto(vec![sol(10.0, 5.0)]);
        let b = pareto(vec![sol(20.0, 7.0)]);
        let c = combine(&a, &b, 1.0001);
        // empty, a alone, b alone, a∪b
        assert_eq!(c.len(), 4);
        let last = c.last().expect("non-empty");
        assert_eq!(last.area, 30.0);
        assert_eq!(last.saved_seconds, 12.0);
    }

    #[test]
    fn speedup_follows_equation_1() {
        // T_all = 1s (1.5e9 cycles at 1.5GHz); saving 0.5s → 2×.
        let mut s = sol(1.0, 0.5);
        s.saved_seconds = 0.5;
        let total_cycles = CPU_FREQ_HZ as u64;
        assert!((s.speedup(total_cycles) - 2.0).abs() < 1e-9);
        // empty solution → 1×
        assert!((Solution::empty().speedup(total_cycles) - 1.0).abs() < 1e-12);
    }
}
