//! Algorithm 1: dynamic-programming candidate selection over the wPST.
//!
//! ```text
//! Function DP(vertex v):
//!   if prune(v, R) then return
//!   if v is bb then
//!     F[v] ← filter(pareto(accel(v, R)))
//!   else
//!     F[v] ← ∅
//!     for u ∈ v.children: DP(u); F[v] ← filter(F[v] ⊗ F[u])
//!     if v is ctrl-flow: F[v] ← filter(F[v] ∪ pareto(accel(v, R)))
//! ```
//!
//! `prune` drops subtrees whose profiled duration share is below a threshold
//! (not hotspots); `accel` invokes the `cayman-hls` model; `pareto`/`filter`
//! live in [`mod@crate::pareto`]. `F[root]` is the returned Pareto-optimal
//! solution set for the whole application.
//!
//! Two engineering layers sit on top of the paper's algorithm:
//!
//! * **Parallel subtrees** — sibling wPST subtrees are independent DP
//!   problems, so with [`SelectOptions::threads`] > 1 they are evaluated on
//!   scoped worker threads (`std::thread::scope`; no external dependencies).
//!   Child results are always combined *sequentially in child order*, so the
//!   Pareto front is bit-identical to the sequential run.
//! * **Design memoisation** — `accel(v, R)` is pure given the analysed
//!   application, so its results are memoised in a [`DesignCache`] keyed by
//!   model identity × candidate identity. Selection re-runs over the same
//!   application (framework comparisons, ablation and α sweeps) hit the
//!   cache instead of re-running scheduling.
//!
//! A [`SelectStats`] snapshot (per-phase wall time, cache hits/misses,
//! vertices visited/pruned) rides on every [`SelectionResult`].

use crate::cache::{DesignCache, DesignKey, ModelId};
use crate::pareto::{combine, filter, pareto, Solution};
use crate::sched::{self, SchedKind};
use crate::stats::{thread_cpu_nanos, AtomicStats, SelectStats};
use cayman_analysis::profile::Profile;
use cayman_analysis::wpst::{Wpst, WpstKind, WpstNodeId};
use cayman_hls::design::{generate_designs, AcceleratorDesign};
use cayman_hls::inputs::{Candidate, FuncInputs};
use cayman_hls::interface::ModelOptions;
use cayman_ir::Module;
use std::sync::Arc;

/// An accelerator model: turns a candidate region into configured designs.
///
/// The default implementation is Cayman's model (`cayman-hls`); the baseline
/// frameworks (NOVIA, QsCores) plug in their own restricted models so the
/// same Algorithm 1 selection machinery drives all three comparisons.
///
/// Models must be [`Sync`]: the parallel DP invokes them from scoped worker
/// threads. Every bundled model is a stateless value, so this is free.
pub trait AccelModel: Sync {
    /// Configurations for accelerating `cand` as one extracted kernel.
    fn designs(&self, inputs: &FuncInputs<'_>, cand: &Candidate) -> Vec<AcceleratorDesign>;

    /// This model's cache identity, or `None` to opt out of design
    /// memoisation. Two model instances with equal identities must produce
    /// identical designs for equal candidates.
    fn cache_id(&self) -> Option<ModelId> {
        None
    }
}

/// Cayman's own accelerator model (control-flow optimisation + specialised
/// interfaces).
#[derive(Debug, Clone, Default)]
pub struct CaymanModel(pub ModelOptions);

impl AccelModel for CaymanModel {
    fn designs(&self, inputs: &FuncInputs<'_>, cand: &Candidate) -> Vec<AcceleratorDesign> {
        generate_designs(inputs, cand, &self.0)
    }

    fn cache_id(&self) -> Option<ModelId> {
        Some(ModelId {
            name: "cayman",
            options: self.0.fingerprint(),
        })
    }
}

/// Options steering the selection DP.
#[derive(Debug, Clone)]
pub struct SelectOptions {
    /// Accelerator-model options (β, unroll factors, coupled-only ablation).
    pub model: ModelOptions,
    /// α of the `filter` function (solution-area spacing).
    pub alpha: f64,
    /// `prune` threshold: minimum fraction of total program time a region
    /// must account for to stay in the search.
    pub prune_share: f64,
    /// Worker-thread budget for evaluating independent wPST subtrees.
    /// `1` (the default) runs fully sequentially; the Pareto front is
    /// identical for every value.
    pub threads: usize,
    /// Which parallel engine to use when `threads > 1`: work-stealing
    /// tasks (the default) or the static sibling-chunk splitter. Both are
    /// bit-identical to sequential; the default honours the
    /// `CAYMAN_SELECT_SCHED` environment variable (`static` / `steal`).
    pub sched: SchedKind,
}

impl Default for SelectOptions {
    fn default() -> Self {
        SelectOptions {
            model: ModelOptions::default(),
            alpha: 1.1,
            prune_share: 0.001,
            threads: 1,
            sched: SchedKind::from_env(),
        }
    }
}

impl SelectOptions {
    /// Default options with the thread budget set to the machine's available
    /// parallelism.
    pub fn parallel() -> Self {
        SelectOptions {
            threads: std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
            ..Default::default()
        }
    }
}

/// Result of a selection run.
#[derive(Debug)]
pub struct SelectionResult {
    /// Pareto-optimal solutions, by increasing area (first entry is empty).
    pub pareto: Vec<Solution>,
    /// Number of wPST vertices visited (not pruned).
    pub visited: usize,
    /// Total accelerator configurations evaluated by the model (cache hits
    /// included — they were evaluated on the memoised run).
    pub configs_evaluated: usize,
    /// Full observability snapshot for this run.
    pub stats: SelectStats,
}

impl SelectionResult {
    /// The best solution whose area fits `budget` (largest saving).
    ///
    /// Falls back to the front's first entry (the empty solution) when
    /// nothing fits — a negative budget, say — and to a static empty
    /// solution when the front itself is empty, so an empty selection can
    /// never panic a budget sweep.
    pub fn best_under(&self, budget: f64) -> &Solution {
        static EMPTY: Solution = Solution {
            kernels: Vec::new(),
            area: 0.0,
            saved_seconds: 0.0,
        };
        self.pareto
            .iter()
            .rfind(|s| s.area <= budget)
            .or_else(|| self.pareto.first())
            .unwrap_or(&EMPTY)
    }
}

/// Runs Algorithm 1 over the wPST.
///
/// `inputs` must hold one [`FuncInputs`] per module function (indexed by
/// `FuncId`). Designs are memoised in a run-local cache; to share memoised
/// designs across runs use [`run_selection_cached`].
pub fn run_selection(
    module: &Module,
    wpst: &Wpst,
    profile: &Profile,
    inputs: &[FuncInputs<'_>],
    opts: &SelectOptions,
) -> SelectionResult {
    let model = CaymanModel(opts.model.clone());
    run_selection_with(module, wpst, profile, inputs, opts, &model)
}

/// Runs Algorithm 1 with a custom accelerator model (used by the baseline
/// frameworks), memoising designs in a run-local cache.
pub fn run_selection_with(
    module: &Module,
    wpst: &Wpst,
    profile: &Profile,
    inputs: &[FuncInputs<'_>],
    opts: &SelectOptions,
    model: &dyn AccelModel,
) -> SelectionResult {
    let cache = DesignCache::new();
    run_selection_cached(module, wpst, profile, inputs, opts, model, &cache)
}

/// Runs Algorithm 1 with an externally owned [`DesignCache`], so repeated
/// selection over the same analysed application (framework comparisons,
/// ablation sweeps, α/budget sweeps) reuses memoised `accel(v, R)` results.
///
/// The cache must only ever be used with one analysed application: its keys
/// identify candidates and models, not modules or profiles.
pub fn run_selection_cached(
    module: &Module,
    wpst: &Wpst,
    profile: &Profile,
    inputs: &[FuncInputs<'_>],
    opts: &SelectOptions,
    model: &dyn AccelModel,
    cache: &DesignCache,
) -> SelectionResult {
    // The obs span is the single wall-clock measurement: it feeds both the
    // trace (when enabled) and the `SelectStats` snapshot.
    let wall = cayman_obs::timed("select.run");
    let engine = Engine {
        module,
        wpst,
        profile,
        inputs,
        opts,
        model,
        cache,
        stats: AtomicStats::default(),
    };
    let threads = opts.threads.max(1);
    let f_root = if threads > 1 && opts.sched == SchedKind::WorkSteal {
        sched::run_work_stealing(&engine, threads)
    } else if threads > 1 {
        // The caller thread carries the static splitter's serial spine —
        // root-level combines and chain vertices — which is on the critical
        // path, so record it alongside the chunk workers' busy entries.
        let cpu0 = thread_cpu_nanos();
        let f = engine.dp(wpst.root(), threads);
        engine
            .stats
            .record_worker_busy(thread_cpu_nanos().saturating_sub(cpu0));
        f
    } else {
        engine.dp(wpst.root(), threads)
    };
    let scheduler = if threads <= 1 {
        "seq"
    } else {
        opts.sched.label()
    };
    let stats = engine.stats.snapshot(wall.finish(), threads, scheduler);
    SelectionResult {
        pareto: f_root,
        visited: stats.visited,
        configs_evaluated: stats.configs_considered,
        stats,
    }
}

/// Identity of one root-child (function-vertex) subtree's folded Pareto
/// front. Everything the DP reads below that vertex is pinned:
///
/// * `node`/`func` — wPST subtrees are numbered contiguously per function,
///   so the function vertex's own id fixes every `WpstNodeId` below it
///   (solutions embed node ids; a shifted numbering must miss);
/// * `content_fp` — the normalized function body, which determines the
///   region tree shape, analyses and static cycle model;
/// * `bc_fp` — the function's profiled block counts (region entries/cycles
///   and profiled trip counts);
/// * `total_cycles` — the whole-program cycle total (`prune`'s denominator
///   and every solution's saved-seconds scale);
/// * `arrays_fp` — array declarations the model reads for interface sizing;
/// * `model`/`alpha_bits`/`prune_bits` — model identity and the DP's own
///   filter/prune parameters, bit-exact.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FrontKey {
    /// The function vertex (root child) the front was folded under.
    pub node: WpstNodeId,
    /// The function id.
    pub func: cayman_ir::FuncId,
    /// Normalized-function content fingerprint.
    pub content_fp: u64,
    /// Fingerprint of the function's profiled block counts.
    pub bc_fp: u64,
    /// Whole-program profiled cycle total.
    pub total_cycles: u64,
    /// Fingerprint of the module's array declarations.
    pub arrays_fp: u64,
    /// Accelerator-model identity.
    pub model: ModelId,
    /// `SelectOptions::alpha` bit pattern.
    pub alpha_bits: u64,
    /// `SelectOptions::prune_share` bit pattern.
    pub prune_bits: u64,
}

/// Memoised per-function-subtree Pareto fronts, shared across incremental
/// re-selections. Where the [`DesignCache`] memoises `accel(v, R)` calls,
/// this store memoises the *entire folded front* of a root-child subtree,
/// so re-selection after an edit only re-runs the DP below function
/// vertices whose key actually changed — clean subtrees are answered with
/// an `Arc` clone.
#[derive(Debug, Default)]
pub struct FrontStore {
    map: std::collections::HashMap<FrontKey, Arc<Vec<Solution>>>,
    /// Subtree fronts answered from the store (across all runs).
    pub hits: u64,
    /// Subtree fronts computed and inserted (across all runs).
    pub misses: u64,
}

impl FrontStore {
    /// An empty store.
    pub fn new() -> Self {
        FrontStore::default()
    }

    /// Number of memoised subtree fronts.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Drops all memoised fronts (hit/miss counters keep accumulating).
    pub fn clear(&mut self) {
        self.map.clear();
    }
}

/// FNV-1a over a `u64` slice (block-count fingerprints for [`FrontKey`]).
fn hash_u64_slice(vals: &[u64]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &v in vals {
        for b in v.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

/// Runs Algorithm 1 reusing memoised per-function-subtree fronts.
///
/// Identical in result to [`run_selection_cached`] — the root fold combines
/// child fronts strictly in child order exactly as `DP(root)` does — but
/// each root-child subtree is answered from `fronts` when its [`FrontKey`]
/// matches, skipping the subtree's DP *and* every model call under it.
/// This is the incremental re-selection entry: after an edit, only the
/// edited function's subtree (plus any function whose profile or vertex
/// numbering shifted) misses.
///
/// Runs sequentially regardless of `opts.threads` — the reuse path exists
/// to make re-selection cheap, and the front is thread-invariant anyway.
/// `visited`/worker stats therefore reflect only the subtrees actually
/// re-folded; they are not part of the front-equivalence surface.
#[allow(clippy::too_many_arguments)]
pub fn run_selection_with_fronts(
    module: &Module,
    wpst: &Wpst,
    profile: &Profile,
    inputs: &[FuncInputs<'_>],
    opts: &SelectOptions,
    model: &dyn AccelModel,
    cache: &DesignCache,
    fronts: &mut FrontStore,
) -> SelectionResult {
    let wall = cayman_obs::timed("select.run");
    let engine = Engine {
        module,
        wpst,
        profile,
        inputs,
        opts,
        model,
        cache,
        stats: AtomicStats::default(),
    };
    let root = wpst.root();
    let f_root = if profile.share(root) < opts.prune_share {
        AtomicStats::add_usize(&engine.stats.pruned, 1);
        vec![Solution::empty()]
    } else {
        AtomicStats::add_usize(&engine.stats.visited, 1);
        let arrays_fp = cayman_ir::fingerprint_arrays(&module.arrays);
        let model_id = model.cache_id();
        let children = &wpst.node(root).children;
        let mut child_fronts: Vec<Arc<Vec<Solution>>> = Vec::with_capacity(children.len());
        for &u in children {
            // Only function vertices under a model with a cache identity are
            // keyable; anything else (custom trees, identity-less models)
            // falls back to a plain subtree DP.
            let key = match (wpst.node(u).kind, model_id) {
                (WpstKind::Func(f), Some(model)) => Some(FrontKey {
                    node: u,
                    func: f,
                    content_fp: inputs[f.index()].content_fp,
                    bc_fp: hash_u64_slice(&profile.block_counts[f.index()]),
                    total_cycles: profile.total_cycles,
                    arrays_fp,
                    model,
                    alpha_bits: opts.alpha.to_bits(),
                    prune_bits: opts.prune_share.to_bits(),
                }),
                _ => None,
            };
            if let Some(hit) = key.as_ref().and_then(|k| fronts.map.get(k)) {
                fronts.hits += 1;
                cayman_obs::counter("select.front.hit", 1);
                child_fronts.push(Arc::clone(hit));
                continue;
            }
            let front = Arc::new(engine.dp(u, 1));
            if let Some(key) = key {
                fronts.misses += 1;
                cayman_obs::counter("select.front.miss", 1);
                fronts.map.insert(key, Arc::clone(&front));
            }
            child_fronts.push(front);
        }
        // Combine strictly in child order, exactly as `Engine::dp` folds the
        // root — the root vertex is never bb or ctrl-flow, so the fold is
        // the whole of `DP(root)`.
        let t0 = cayman_obs::timed("select.combine");
        let mut f = vec![Solution::empty()];
        for fu in &child_fronts {
            f = combine(&f, fu, opts.alpha);
        }
        AtomicStats::add_u64(&engine.stats.combine_nanos, t0.finish());
        f
    };
    let stats = engine.stats.snapshot(wall.finish(), 1, "seq");
    SelectionResult {
        pareto: f_root,
        visited: stats.visited,
        configs_evaluated: stats.configs_considered,
        stats,
    }
}

pub(crate) struct Engine<'a> {
    module: &'a Module,
    pub(crate) wpst: &'a Wpst,
    pub(crate) profile: &'a Profile,
    inputs: &'a [FuncInputs<'a>],
    pub(crate) opts: &'a SelectOptions,
    model: &'a dyn AccelModel,
    cache: &'a DesignCache,
    pub(crate) stats: AtomicStats,
}

impl Engine<'_> {
    /// The DP over vertex `v` with a budget of `threads` worker threads for
    /// its subtree.
    fn dp(&self, v: WpstNodeId, threads: usize) -> Vec<Solution> {
        // prune(v, R): not a hotspot → empty Pareto set.
        if self.profile.share(v) < self.opts.prune_share {
            AtomicStats::add_usize(&self.stats.pruned, 1);
            return vec![Solution::empty()];
        }
        AtomicStats::add_usize(&self.stats.visited, 1);

        if self.wpst.is_bb(v) {
            return filter(pareto(self.accel(v)), self.opts.alpha);
        }

        let children = &self.wpst.node(v).children;
        let child_fronts = self.dp_children(children, threads);

        // Combine strictly in child order — this keeps the float summation
        // order, and therefore the front, identical across thread budgets.
        let t0 = cayman_obs::timed("select.combine");
        let mut f = vec![Solution::empty()];
        for fu in &child_fronts {
            f = combine(&f, fu, self.opts.alpha);
        }
        AtomicStats::add_u64(&self.stats.combine_nanos, t0.finish());

        if self.wpst.is_ctrl_flow(v) {
            let mut all = f;
            all.extend(self.accel(v));
            let t1 = cayman_obs::timed("select.combine");
            f = filter(pareto(all), self.opts.alpha);
            AtomicStats::add_u64(&self.stats.combine_nanos, t1.finish());
        }
        f
    }

    /// Evaluates all children of a vertex, in order, distributing the thread
    /// budget over contiguous chunks of siblings.
    fn dp_children(&self, children: &[WpstNodeId], threads: usize) -> Vec<Vec<Solution>> {
        if children.len() == 1 {
            // A chain vertex: push the whole budget down.
            return vec![self.dp(children[0], threads)];
        }
        if threads <= 1 || children.len() < 2 {
            return children.iter().map(|&u| self.dp(u, 1)).collect();
        }
        // Spawn at most `threads` workers; each takes a contiguous chunk of
        // siblings (preserving order). Uneven chunking can materialise fewer
        // chunks than `workers`, so the budget is split over the *actual*
        // chunk count — the old `threads / workers` divided by the wrong
        // denominator and silently dropped the remainder.
        let workers = threads.min(children.len());
        let chunk_size = children.len().div_ceil(workers);
        let nchunks = children.len().div_ceil(chunk_size);
        let budgets = split_budget(threads, nchunks);
        std::thread::scope(|scope| {
            let handles: Vec<_> = children
                .chunks(chunk_size)
                .zip(&budgets)
                .map(|(chunk, &budget)| {
                    scope.spawn(move || {
                        let cpu0 = thread_cpu_nanos();
                        let fronts = chunk
                            .iter()
                            .map(|&u| self.dp(u, budget))
                            .collect::<Vec<_>>();
                        self.stats
                            .record_worker_busy(thread_cpu_nanos().saturating_sub(cpu0));
                        fronts
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("selection worker panicked"))
                .collect()
        })
    }

    /// `accel(v, R)`: configurations for accelerating vertex `v` as a single
    /// extracted kernel, answered from the design cache when possible.
    pub(crate) fn accel(&self, v: WpstNodeId) -> Vec<Solution> {
        let Some((region, func)) = self.wpst.region(v) else {
            return Vec::new();
        };
        if !region.accelerable {
            return Vec::new();
        }
        let rp = self.profile.of(v);
        if rp.entries == 0 || rp.cycles == 0 {
            return Vec::new();
        }
        let cand = Candidate {
            func,
            blocks: region.blocks.clone(),
            entries: rp.entries,
            cpu_cycles: rp.cycles,
            is_bb: matches!(region.kind, cayman_analysis::regions::RegionKind::Bb(_)),
            content_fp: self.inputs[func.index()].content_fp,
        };
        let designs = self.designs_for(&cand, func, v);
        AtomicStats::add_usize(&self.stats.configs_considered, designs.len());
        designs
            .iter()
            .map(|d| Solution::single(v, d.clone()))
            .collect()
    }

    /// Memoised model invocation. `v` only labels the top-k cost breakdown;
    /// it does not participate in the cache key.
    fn designs_for(
        &self,
        cand: &Candidate,
        func: cayman_ir::FuncId,
        v: WpstNodeId,
    ) -> Arc<Vec<AcceleratorDesign>> {
        let key = self.model.cache_id().map(|model| DesignKey {
            model,
            candidate: cand.key(),
        });
        if let Some(key) = &key {
            if let Some(hit) = self.cache.lookup(key) {
                AtomicStats::add_u64(&self.stats.cache_hits, 1);
                cayman_obs::counter("select.cache.hit", 1);
                return hit;
            }
            AtomicStats::add_u64(&self.stats.cache_misses, 1);
            cayman_obs::counter("select.cache.miss", 1);
        }
        // Label the invocation by function, vertex, and region kind — the
        // same naming trace spans use, so the printed top-k and the trace
        // agree.
        let label = format!(
            "{}#v{}:{}",
            self.module.function(func).name,
            v.index(),
            if cand.is_bb { "bb" } else { "ctrl-flow" }
        );
        let t0 = cayman_obs::timed_with("model.accel", || {
            vec![("region", cayman_obs::ArgValue::Str(label.clone()))]
        });
        let designs = self.model.designs(&self.inputs[func.index()], cand);
        let nanos = t0.finish();
        AtomicStats::add_u64(&self.stats.model_nanos, nanos);
        AtomicStats::add_usize(&self.stats.configs_evaluated, designs.len());
        self.stats.record_accel(label, nanos, designs.len());
        match key {
            Some(key) => self.cache.insert(key, designs),
            None => Arc::new(designs),
        }
    }
}

/// Splits a thread budget of `threads` over `nchunks` workers so that the
/// whole budget is used: every worker gets at least `threads / nchunks`, and
/// the first `threads % nchunks` workers get one more. The sum is always
/// exactly `threads`, and every entry is ≥ 1 whenever `threads >= nchunks`.
pub(crate) fn split_budget(threads: usize, nchunks: usize) -> Vec<usize> {
    let base = threads / nchunks;
    let rem = threads % nchunks;
    (0..nchunks).map(|i| base + usize::from(i < rem)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cayman_analysis::access::{trip_count, AccessAnalysis};
    use cayman_analysis::memdep::{analyse_loop_deps, LoopDeps};
    use cayman_analysis::scev::Scev;
    use cayman_ir::builder::ModuleBuilder;
    use cayman_ir::interp::Interp;
    use cayman_ir::{Module, Type};

    /// Owned analysis state so tests can build `FuncInputs` easily.
    pub(crate) struct App {
        pub module: Module,
        pub wpst: Wpst,
        pub profile: Profile,
        pub accesses: Vec<AccessAnalysis>,
        pub deps: Vec<Vec<LoopDeps>>,
        pub trips: Vec<Vec<f64>>,
        pub content_fps: Vec<u64>,
    }

    impl App {
        pub fn analyse(module: Module) -> App {
            module.verify().expect("verifies");
            let wpst = Wpst::build(&module);
            let exec = Interp::new(&module).run(&[]).expect("runs");
            let profile = Profile::aggregate(&module, &wpst, &exec);
            let mut accesses = Vec::new();
            let mut deps = Vec::new();
            let mut trips = Vec::new();
            for f in module.function_ids() {
                let func = module.function(f);
                let ctx = &wpst.func_ctxs[f.index()];
                let mut scev = Scev::new(func, ctx);
                let aa = AccessAnalysis::run(&module, func, ctx, &mut scev);
                let dd = analyse_loop_deps(func, ctx, &mut scev, &aa);
                let tt: Vec<f64> = ctx
                    .forest
                    .ids()
                    .map(|l| trip_count(&wpst, &profile, func, f, l).unwrap_or(1.0))
                    .collect();
                accesses.push(aa);
                deps.push(dd);
                trips.push(tt);
            }
            let content_fps = module
                .functions
                .iter()
                .map(cayman_ir::fingerprint_function)
                .collect();
            App {
                module,
                wpst,
                profile,
                accesses,
                deps,
                trips,
                content_fps,
            }
        }

        pub fn inputs(&self) -> Vec<FuncInputs<'_>> {
            self.module
                .function_ids()
                .map(|f| FuncInputs {
                    module: &self.module,
                    func_id: f,
                    ctx: &self.wpst.func_ctxs[f.index()],
                    accesses: &self.accesses[f.index()],
                    deps: &self.deps[f.index()],
                    trips: &self.trips[f.index()],
                    block_counts: &self.profile.block_counts[f.index()],
                    content_fp: self.content_fps[f.index()],
                })
                .collect()
        }
    }

    fn two_kernel_app() -> Module {
        let mut mb = ModuleBuilder::new("app");
        let n = 128;
        let x = mb.array("x", Type::F64, &[n]);
        let y = mb.array("y", Type::F64, &[n]);
        let a = mb.array("A", Type::F64, &[n, 16]);
        let b = mb.array("B", Type::F64, &[n, 16]);
        let z = mb.array("z", Type::F64, &[n]);
        let f0 = mb.function("linear", &[], None, |fb| {
            fb.counted_loop(0, n as i64, 1, |fb, i| {
                let xv = fb.load_idx(x, &[i]);
                let t = fb.fmul(fb.fconst(2.0), xv);
                let v = fb.fadd(t, fb.fconst(1.0));
                fb.store_idx(y, &[i], v);
            });
            fb.ret(None);
        });
        let f1 = mb.function("dot", &[], None, |fb| {
            fb.counted_loop(0, n as i64, 1, |fb, i| {
                fb.counted_loop(0, 16, 1, |fb, j| {
                    let av = fb.load_idx(a, &[i, j]);
                    let bv = fb.load_idx(b, &[i, j]);
                    let p = fb.fmul(av, bv);
                    let zv = fb.load_idx(z, &[i]);
                    let s = fb.fadd(zv, p);
                    fb.store_idx(z, &[i], s);
                });
            });
            fb.ret(None);
        });
        mb.function("main", &[], None, |fb| {
            fb.call(f0, &[], None);
            fb.call(f1, &[], None);
            fb.ret(None);
        });
        mb.finish()
    }

    fn fronts_identical(a: &[Solution], b: &[Solution]) -> bool {
        a.len() == b.len()
            && a.iter().zip(b).all(|(x, y)| {
                x.area.to_bits() == y.area.to_bits()
                    && x.saved_seconds.to_bits() == y.saved_seconds.to_bits()
                    && x.kernels.len() == y.kernels.len()
                    && x.kernels
                        .iter()
                        .zip(&y.kernels)
                        .all(|(k, l)| k.node == l.node && k.design.blocks == l.design.blocks)
            })
    }

    #[test]
    fn selection_produces_increasing_pareto_front() {
        let app = App::analyse(two_kernel_app());
        let inputs = app.inputs();
        let res = run_selection(
            &app.module,
            &app.wpst,
            &app.profile,
            &inputs,
            &SelectOptions::default(),
        );
        assert!(res.pareto.len() >= 3, "empty + several real solutions");
        assert!(res.visited > 0);
        assert!(res.configs_evaluated > 0);
        // strictly increasing area and savings
        for w in res.pareto.windows(2) {
            assert!(w[1].area > w[0].area);
            assert!(w[1].saved_seconds > w[0].saved_seconds);
        }
        // the largest solution should accelerate both kernels
        let best = res.pareto.last().expect("non-empty");
        assert!(best.speedup(app.profile.total_cycles) > 1.5);
    }

    #[test]
    fn kernels_never_overlap() {
        let app = App::analyse(two_kernel_app());
        let inputs = app.inputs();
        let res = run_selection(
            &app.module,
            &app.wpst,
            &app.profile,
            &inputs,
            &SelectOptions::default(),
        );
        for sol in &res.pareto {
            // pairwise block-disjointness (within the same function)
            for i in 0..sol.kernels.len() {
                for j in (i + 1)..sol.kernels.len() {
                    let a = &sol.kernels[i].design;
                    let b = &sol.kernels[j].design;
                    if a.func == b.func {
                        assert!(
                            a.blocks.iter().all(|x| !b.blocks.contains(x)),
                            "kernels overlap"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn budget_lookup_is_monotone() {
        let app = App::analyse(two_kernel_app());
        let inputs = app.inputs();
        let res = run_selection(
            &app.module,
            &app.wpst,
            &app.profile,
            &inputs,
            &SelectOptions::default(),
        );
        let small = res.best_under(0.25 * cayman_hls::CVA6_TILE_AREA);
        let large = res.best_under(0.65 * cayman_hls::CVA6_TILE_AREA);
        assert!(large.saved_seconds >= small.saved_seconds);
        assert!(small.area <= 0.25 * cayman_hls::CVA6_TILE_AREA);
    }

    #[test]
    fn aggressive_pruning_empties_selection() {
        let app = App::analyse(two_kernel_app());
        let inputs = app.inputs();
        let opts = SelectOptions {
            prune_share: 2.0, // nothing accounts for >200% of runtime
            ..Default::default()
        };
        let res = run_selection(&app.module, &app.wpst, &app.profile, &inputs, &opts);
        assert_eq!(res.pareto.len(), 1, "only the empty solution survives");
        assert_eq!(res.visited, 0);
        assert!(res.stats.pruned > 0, "pruned vertices are counted");
    }

    #[test]
    fn coupled_only_ablation_saves_less() {
        let app = App::analyse(two_kernel_app());
        let inputs = app.inputs();
        let full = run_selection(
            &app.module,
            &app.wpst,
            &app.profile,
            &inputs,
            &SelectOptions::default(),
        );
        let ablated = run_selection(
            &app.module,
            &app.wpst,
            &app.profile,
            &inputs,
            &SelectOptions {
                model: ModelOptions::coupled_only(),
                ..Default::default()
            },
        );
        let best_full = full.pareto.last().expect("sol").saved_seconds;
        let best_abl = ablated.pareto.last().expect("sol").saved_seconds;
        assert!(
            best_full > best_abl,
            "full {best_full} vs coupled-only {best_abl}"
        );
    }

    #[test]
    fn parallel_selection_matches_sequential_bitwise() {
        let app = App::analyse(two_kernel_app());
        let inputs = app.inputs();
        let seq = run_selection(
            &app.module,
            &app.wpst,
            &app.profile,
            &inputs,
            &SelectOptions::default(),
        );
        assert_eq!(seq.stats.scheduler, "seq");
        assert!(seq.stats.worker_busy_nanos.is_empty());
        for sched in [SchedKind::Static, SchedKind::WorkSteal] {
            for threads in [2usize, 3, 8] {
                let opts = SelectOptions {
                    threads,
                    sched,
                    ..Default::default()
                };
                let par = run_selection(&app.module, &app.wpst, &app.profile, &inputs, &opts);
                assert!(
                    fronts_identical(&seq.pareto, &par.pareto),
                    "{sched:?} threads={threads} changed the front"
                );
                assert_eq!(par.visited, seq.visited, "{sched:?} threads={threads}");
                assert_eq!(par.stats.pruned, seq.stats.pruned);
                assert_eq!(par.configs_evaluated, seq.configs_evaluated);
                assert_eq!(par.stats.threads, threads);
                assert_eq!(par.stats.scheduler, sched.label());
                assert!(
                    !par.stats.worker_busy_nanos.is_empty(),
                    "{sched:?} spawned no workers"
                );
                // A repeated run must also be bit-identical: no steal
                // interleaving or chunk assignment may leak into the front.
                let again = run_selection(&app.module, &app.wpst, &app.profile, &inputs, &opts);
                assert!(
                    fronts_identical(&par.pareto, &again.pareto),
                    "{sched:?} threads={threads} is not reproducible"
                );
            }
        }
    }

    #[test]
    fn split_budget_spends_the_whole_thread_budget() {
        // The old splitter computed (threads / workers).max(1) with the
        // worker count instead of the materialised chunk count: 8 threads
        // over 9 children → chunk_size 2 → 5 chunks, but budget 1 each,
        // silently dropping 3 threads.
        assert_eq!(split_budget(8, 5), vec![2, 2, 2, 1, 1]);
        assert_eq!(split_budget(8, 3), vec![3, 3, 2]);
        assert_eq!(split_budget(4, 4), vec![1, 1, 1, 1]);
        assert_eq!(split_budget(7, 2), vec![4, 3]);
        for threads in 1..24usize {
            for nchunks in 1..=threads {
                let budgets = split_budget(threads, nchunks);
                assert_eq!(budgets.len(), nchunks);
                assert_eq!(budgets.iter().sum::<usize>(), threads, "budget lost");
                assert!(budgets.iter().all(|&b| b >= 1));
                assert!(budgets.windows(2).all(|w| w[0] >= w[1]), "non-increasing");
            }
        }
    }

    #[test]
    fn best_under_on_an_empty_front_returns_the_empty_solution() {
        let res = SelectionResult {
            pareto: Vec::new(),
            visited: 0,
            configs_evaluated: 0,
            stats: SelectStats::default(),
        };
        let sol = res.best_under(0.5);
        assert!(sol.kernels.is_empty());
        assert_eq!(sol.area, 0.0);
        assert_eq!(sol.saved_seconds, 0.0);
        // And a budget nothing fits still yields the empty fallback rather
        // than a panic on a populated front.
        let app = App::analyse(two_kernel_app());
        let inputs = app.inputs();
        let full = run_selection(
            &app.module,
            &app.wpst,
            &app.profile,
            &inputs,
            &SelectOptions::default(),
        );
        assert!(full.best_under(-1.0).kernels.is_empty());
    }

    #[test]
    fn warm_cache_reproduces_the_front_and_skips_the_model() {
        let app = App::analyse(two_kernel_app());
        let inputs = app.inputs();
        let opts = SelectOptions::default();
        let model = CaymanModel(opts.model.clone());
        let cache = DesignCache::new();
        let cold = run_selection_cached(
            &app.module,
            &app.wpst,
            &app.profile,
            &inputs,
            &opts,
            &model,
            &cache,
        );
        assert_eq!(cold.stats.cache_hits, 0);
        assert!(cold.stats.cache_misses > 0);
        assert!(cold.stats.configs_evaluated > 0);
        // Every model invocation is labelled `function#vN` in the top-k
        // breakdown, most expensive first.
        assert!(!cold.stats.top_accel.is_empty());
        assert!(
            cold.stats
                .top_accel
                .iter()
                .all(|c| c.label.contains("#v") && c.designs > 0),
            "{:?}",
            cold.stats.top_accel
        );

        let warm = run_selection_cached(
            &app.module,
            &app.wpst,
            &app.profile,
            &inputs,
            &opts,
            &model,
            &cache,
        );
        assert!(fronts_identical(&cold.pareto, &warm.pareto));
        assert_eq!(warm.stats.cache_misses, 0, "everything memoised");
        assert_eq!(warm.stats.cache_hits, cold.stats.cache_misses);
        assert_eq!(warm.stats.configs_evaluated, 0, "model never invoked");
        assert!(warm.stats.top_accel.is_empty(), "no model calls to rank");
        assert_eq!(warm.configs_evaluated, cold.configs_evaluated);
    }

    #[test]
    fn ablation_options_do_not_cross_contaminate_the_cache() {
        let app = App::analyse(two_kernel_app());
        let inputs = app.inputs();
        let cache = DesignCache::new();
        let full_opts = SelectOptions::default();
        let abl_opts = SelectOptions {
            model: ModelOptions::coupled_only(),
            ..Default::default()
        };
        let full = run_selection_cached(
            &app.module,
            &app.wpst,
            &app.profile,
            &inputs,
            &full_opts,
            &CaymanModel(full_opts.model.clone()),
            &cache,
        );
        // Different ModelOptions → different fingerprint → no hits, and the
        // ablation result is unaffected by the warm full-model cache.
        let ablated = run_selection_cached(
            &app.module,
            &app.wpst,
            &app.profile,
            &inputs,
            &abl_opts,
            &CaymanModel(abl_opts.model.clone()),
            &cache,
        );
        assert_eq!(ablated.stats.cache_hits, 0);
        let best_full = full.pareto.last().expect("sol").saved_seconds;
        let best_abl = ablated.pareto.last().expect("sol").saved_seconds;
        assert!(best_full > best_abl);
    }
}
