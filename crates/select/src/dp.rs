//! Algorithm 1: dynamic-programming candidate selection over the wPST.
//!
//! ```text
//! Function DP(vertex v):
//!   if prune(v, R) then return
//!   if v is bb then
//!     F[v] ← filter(pareto(accel(v, R)))
//!   else
//!     F[v] ← ∅
//!     for u ∈ v.children: DP(u); F[v] ← filter(F[v] ⊗ F[u])
//!     if v is ctrl-flow: F[v] ← filter(F[v] ∪ pareto(accel(v, R)))
//! ```
//!
//! `prune` drops subtrees whose profiled duration share is below a threshold
//! (not hotspots); `accel` invokes the `cayman-hls` model; `pareto`/`filter`
//! live in [`mod@crate::pareto`]. `F[root]` is the returned Pareto-optimal
//! solution set for the whole application.

use crate::pareto::{combine, filter, pareto, Solution};
use cayman_analysis::profile::Profile;
use cayman_analysis::wpst::{Wpst, WpstNodeId};
use cayman_hls::design::{generate_designs, AcceleratorDesign};
use cayman_hls::inputs::{Candidate, FuncInputs};
use cayman_hls::interface::ModelOptions;
use cayman_ir::Module;

/// An accelerator model: turns a candidate region into configured designs.
///
/// The default implementation is Cayman's model (`cayman-hls`); the baseline
/// frameworks (NOVIA, QsCores) plug in their own restricted models so the
/// same Algorithm 1 selection machinery drives all three comparisons.
pub trait AccelModel {
    /// Configurations for accelerating `cand` as one extracted kernel.
    fn designs(&self, inputs: &FuncInputs<'_>, cand: &Candidate) -> Vec<AcceleratorDesign>;
}

/// Cayman's own accelerator model (control-flow optimisation + specialised
/// interfaces).
#[derive(Debug, Clone, Default)]
pub struct CaymanModel(pub ModelOptions);

impl AccelModel for CaymanModel {
    fn designs(&self, inputs: &FuncInputs<'_>, cand: &Candidate) -> Vec<AcceleratorDesign> {
        generate_designs(inputs, cand, &self.0)
    }
}

/// Options steering the selection DP.
#[derive(Debug, Clone)]
pub struct SelectOptions {
    /// Accelerator-model options (β, unroll factors, coupled-only ablation).
    pub model: ModelOptions,
    /// α of the `filter` function (solution-area spacing).
    pub alpha: f64,
    /// `prune` threshold: minimum fraction of total program time a region
    /// must account for to stay in the search.
    pub prune_share: f64,
}

impl Default for SelectOptions {
    fn default() -> Self {
        SelectOptions {
            model: ModelOptions::default(),
            alpha: 1.1,
            prune_share: 0.001,
        }
    }
}

/// Result of a selection run.
#[derive(Debug)]
pub struct SelectionResult {
    /// Pareto-optimal solutions, by increasing area (first entry is empty).
    pub pareto: Vec<Solution>,
    /// Number of wPST vertices visited (not pruned).
    pub visited: usize,
    /// Total accelerator configurations evaluated by the model.
    pub configs_evaluated: usize,
}

impl SelectionResult {
    /// The best solution whose area fits `budget` (largest saving).
    pub fn best_under(&self, budget: f64) -> &Solution {
        self.pareto
            .iter()
            .filter(|s| s.area <= budget)
            .last()
            .unwrap_or(&self.pareto[0])
    }
}

/// Runs Algorithm 1 over the wPST.
///
/// `inputs` must hold one [`FuncInputs`] per module function (indexed by
/// `FuncId`).
pub fn run_selection(
    module: &Module,
    wpst: &Wpst,
    profile: &Profile,
    inputs: &[FuncInputs<'_>],
    opts: &SelectOptions,
) -> SelectionResult {
    let model = CaymanModel(opts.model.clone());
    run_selection_with(module, wpst, profile, inputs, opts, &model)
}

/// Runs Algorithm 1 with a custom accelerator model (used by the baseline
/// frameworks).
pub fn run_selection_with(
    module: &Module,
    wpst: &Wpst,
    profile: &Profile,
    inputs: &[FuncInputs<'_>],
    opts: &SelectOptions,
    model: &dyn AccelModel,
) -> SelectionResult {
    let mut engine = Engine {
        module,
        wpst,
        profile,
        inputs,
        opts,
        model,
        visited: 0,
        configs: 0,
    };
    let f_root = engine.dp(wpst.root());
    SelectionResult {
        pareto: f_root,
        visited: engine.visited,
        configs_evaluated: engine.configs,
    }
}

struct Engine<'a> {
    module: &'a Module,
    wpst: &'a Wpst,
    profile: &'a Profile,
    inputs: &'a [FuncInputs<'a>],
    opts: &'a SelectOptions,
    model: &'a dyn AccelModel,
    visited: usize,
    configs: usize,
}

impl Engine<'_> {
    fn dp(&mut self, v: WpstNodeId) -> Vec<Solution> {
        // prune(v, R): not a hotspot → empty Pareto set.
        if self.profile.share(v) < self.opts.prune_share {
            return vec![Solution::empty()];
        }
        self.visited += 1;

        if self.wpst.is_bb(v) {
            return filter(pareto(self.accel(v)), self.opts.alpha);
        }

        let mut f = vec![Solution::empty()];
        let children = self.wpst.node(v).children.clone();
        for u in children {
            let fu = self.dp(u);
            f = combine(&f, &fu, self.opts.alpha);
        }
        if self.wpst.is_ctrl_flow(v) {
            let mut all = f;
            all.extend(self.accel(v));
            f = filter(pareto(all), self.opts.alpha);
        }
        f
    }

    /// `accel(v, R)`: configurations for accelerating vertex `v` as a single
    /// extracted kernel.
    fn accel(&mut self, v: WpstNodeId) -> Vec<Solution> {
        let Some((region, func)) = self.wpst.region(v) else {
            return Vec::new();
        };
        if !region.accelerable {
            return Vec::new();
        }
        let rp = self.profile.of(v);
        if rp.entries == 0 || rp.cycles == 0 {
            return Vec::new();
        }
        let cand = Candidate {
            func,
            blocks: region.blocks.clone(),
            entries: rp.entries,
            cpu_cycles: rp.cycles,
            is_bb: matches!(region.kind, cayman_analysis::regions::RegionKind::Bb(_)),
        };
        let designs = self.model.designs(&self.inputs[func.index()], &cand);
        self.configs += designs.len();
        let _ = self.module;
        designs
            .into_iter()
            .map(|d| Solution::single(v, d))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cayman_analysis::access::{trip_count, AccessAnalysis};
    use cayman_analysis::memdep::{analyse_loop_deps, LoopDeps};
    use cayman_analysis::scev::Scev;
    use cayman_ir::builder::ModuleBuilder;
    use cayman_ir::interp::Interp;
    use cayman_ir::{Module, Type};

    /// Owned analysis state so tests can build `FuncInputs` easily.
    pub(crate) struct App {
        pub module: Module,
        pub wpst: Wpst,
        pub profile: Profile,
        pub accesses: Vec<AccessAnalysis>,
        pub deps: Vec<Vec<LoopDeps>>,
        pub trips: Vec<Vec<f64>>,
    }

    impl App {
        pub fn analyse(module: Module) -> App {
            module.verify().expect("verifies");
            let wpst = Wpst::build(&module);
            let exec = Interp::new(&module).run(&[]).expect("runs");
            let profile = Profile::aggregate(&module, &wpst, &exec);
            let mut accesses = Vec::new();
            let mut deps = Vec::new();
            let mut trips = Vec::new();
            for f in module.function_ids() {
                let func = module.function(f);
                let ctx = &wpst.func_ctxs[f.index()];
                let mut scev = Scev::new(func, ctx);
                let aa = AccessAnalysis::run(&module, func, ctx, &mut scev);
                let dd = analyse_loop_deps(func, ctx, &mut scev, &aa);
                let tt: Vec<f64> = ctx
                    .forest
                    .ids()
                    .map(|l| trip_count(&wpst, &profile, func, f, l).unwrap_or(1.0))
                    .collect();
                accesses.push(aa);
                deps.push(dd);
                trips.push(tt);
            }
            App {
                module,
                wpst,
                profile,
                accesses,
                deps,
                trips,
            }
        }

        pub fn inputs(&self) -> Vec<FuncInputs<'_>> {
            self.module
                .function_ids()
                .map(|f| FuncInputs {
                    module: &self.module,
                    func_id: f,
                    ctx: &self.wpst.func_ctxs[f.index()],
                    accesses: &self.accesses[f.index()],
                    deps: &self.deps[f.index()],
                    trips: self.trips[f.index()].clone(),
                    block_counts: self.profile.block_counts[f.index()].clone(),
                })
                .collect()
        }
    }

    fn two_kernel_app() -> Module {
        let mut mb = ModuleBuilder::new("app");
        let n = 128;
        let x = mb.array("x", Type::F64, &[n]);
        let y = mb.array("y", Type::F64, &[n]);
        let a = mb.array("A", Type::F64, &[n, 16]);
        let b = mb.array("B", Type::F64, &[n, 16]);
        let z = mb.array("z", Type::F64, &[n]);
        let f0 = mb.function("linear", &[], None, |fb| {
            fb.counted_loop(0, n as i64, 1, |fb, i| {
                let xv = fb.load_idx(x, &[i]);
                let t = fb.fmul(fb.fconst(2.0), xv);
                let v = fb.fadd(t, fb.fconst(1.0));
                fb.store_idx(y, &[i], v);
            });
            fb.ret(None);
        });
        let f1 = mb.function("dot", &[], None, |fb| {
            fb.counted_loop(0, n as i64, 1, |fb, i| {
                fb.counted_loop(0, 16, 1, |fb, j| {
                    let av = fb.load_idx(a, &[i, j]);
                    let bv = fb.load_idx(b, &[i, j]);
                    let p = fb.fmul(av, bv);
                    let zv = fb.load_idx(z, &[i]);
                    let s = fb.fadd(zv, p);
                    fb.store_idx(z, &[i], s);
                });
            });
            fb.ret(None);
        });
        mb.function("main", &[], None, |fb| {
            fb.call(f0, &[], None);
            fb.call(f1, &[], None);
            fb.ret(None);
        });
        mb.finish()
    }

    #[test]
    fn selection_produces_increasing_pareto_front() {
        let app = App::analyse(two_kernel_app());
        let inputs = app.inputs();
        let res = run_selection(
            &app.module,
            &app.wpst,
            &app.profile,
            &inputs,
            &SelectOptions::default(),
        );
        assert!(res.pareto.len() >= 3, "empty + several real solutions");
        assert!(res.visited > 0);
        assert!(res.configs_evaluated > 0);
        // strictly increasing area and savings
        for w in res.pareto.windows(2) {
            assert!(w[1].area > w[0].area);
            assert!(w[1].saved_seconds > w[0].saved_seconds);
        }
        // the largest solution should accelerate both kernels
        let best = res.pareto.last().expect("non-empty");
        assert!(best.speedup(app.profile.total_cycles) > 1.5);
    }

    #[test]
    fn kernels_never_overlap() {
        let app = App::analyse(two_kernel_app());
        let inputs = app.inputs();
        let res = run_selection(
            &app.module,
            &app.wpst,
            &app.profile,
            &inputs,
            &SelectOptions::default(),
        );
        for sol in &res.pareto {
            // pairwise block-disjointness (within the same function)
            for i in 0..sol.kernels.len() {
                for j in (i + 1)..sol.kernels.len() {
                    let a = &sol.kernels[i].design;
                    let b = &sol.kernels[j].design;
                    if a.func == b.func {
                        assert!(
                            a.blocks.iter().all(|x| !b.blocks.contains(x)),
                            "kernels overlap"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn budget_lookup_is_monotone() {
        let app = App::analyse(two_kernel_app());
        let inputs = app.inputs();
        let res = run_selection(
            &app.module,
            &app.wpst,
            &app.profile,
            &inputs,
            &SelectOptions::default(),
        );
        let small = res.best_under(0.25 * cayman_hls::CVA6_TILE_AREA);
        let large = res.best_under(0.65 * cayman_hls::CVA6_TILE_AREA);
        assert!(large.saved_seconds >= small.saved_seconds);
        assert!(small.area <= 0.25 * cayman_hls::CVA6_TILE_AREA);
    }

    #[test]
    fn aggressive_pruning_empties_selection() {
        let app = App::analyse(two_kernel_app());
        let inputs = app.inputs();
        let opts = SelectOptions {
            prune_share: 2.0, // nothing accounts for >200% of runtime
            ..Default::default()
        };
        let res = run_selection(&app.module, &app.wpst, &app.profile, &inputs, &opts);
        assert_eq!(res.pareto.len(), 1, "only the empty solution survives");
        assert_eq!(res.visited, 0);
    }

    #[test]
    fn coupled_only_ablation_saves_less() {
        let app = App::analyse(two_kernel_app());
        let inputs = app.inputs();
        let full = run_selection(
            &app.module,
            &app.wpst,
            &app.profile,
            &inputs,
            &SelectOptions::default(),
        );
        let ablated = run_selection(
            &app.module,
            &app.wpst,
            &app.profile,
            &inputs,
            &SelectOptions {
                model: ModelOptions::coupled_only(),
                ..Default::default()
            },
        );
        let best_full = full.pareto.last().expect("sol").saved_seconds;
        let best_abl = ablated.pareto.last().expect("sol").saved_seconds;
        assert!(
            best_full > best_abl,
            "full {best_full} vs coupled-only {best_abl}"
        );
    }
}
