//! Observability for Algorithm 1: per-phase wall time, design-cache
//! effectiveness, and search-space counters, collected lock-free so the
//! parallel DP can update them from every worker thread. Timing numbers
//! come from `cayman-obs` [`TimedSpan`](cayman_obs::TimedSpan)s — the
//! snapshot here is a *view over the same recorder* that feeds the Chrome
//! trace, not a parallel measurement mechanism.

use cayman_obs::pool::TopPool;
use std::fmt;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

/// How many of the most expensive `accel(v, R)` model invocations a
/// [`SelectStats`] snapshot keeps.
pub const TOP_ACCEL_K: usize = 8;

/// One recorded `accel(v, R)` model invocation (a design-cache miss — cache
/// hits cost nothing and are not recorded).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AccelCallStat {
    /// `function#vN:kind` — the vertex whose candidate was modeled, with
    /// the region kind (`bb` / `ctrl-flow`), matching the `model.accel`
    /// trace span's `region` argument.
    pub label: String,
    /// Nanoseconds spent inside the model for this call.
    pub nanos: u64,
    /// Number of designs the call produced.
    pub designs: usize,
}

/// A snapshot of one selection run's statistics, carried on
/// [`crate::SelectionResult`] and printed by the bench binaries.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SelectStats {
    /// wPST vertices visited (not pruned).
    pub visited: usize,
    /// wPST vertices pruned by the hotspot threshold (subtrees skipped).
    pub pruned: usize,
    /// Accelerator configurations that entered the DP (cached or fresh).
    pub configs_considered: usize,
    /// Accelerator configurations actually produced by a model invocation
    /// (cache misses; equals `configs_considered` when running uncached).
    pub configs_evaluated: usize,
    /// Design-cache hits (`accel(v)` answered from memoised designs).
    pub cache_hits: u64,
    /// Design-cache misses (model invoked, result memoised).
    pub cache_misses: u64,
    /// Nanoseconds spent inside the accelerator model, summed over threads.
    pub model_nanos: u64,
    /// Nanoseconds spent in Pareto combine/filter, summed over threads.
    pub combine_nanos: u64,
    /// End-to-end wall-clock nanoseconds of the selection run.
    pub wall_nanos: u64,
    /// The `threads` knob the run used.
    pub threads: usize,
    /// The up-to-[`TOP_ACCEL_K`] most expensive `accel(v, R)` model
    /// invocations, most expensive first.
    pub top_accel: Vec<AccelCallStat>,
    /// Which subtree engine ran the DP: `"seq"`, `"static"` or `"steal"`
    /// (empty on hand-built snapshots).
    pub scheduler: &'static str,
    /// Per-worker busy CPU nanoseconds, largest first; empty for sequential
    /// runs. The work-stealing scheduler records exactly one entry per
    /// worker thread; the static splitter records one per spawned chunk
    /// worker across its nested scopes plus one for the caller thread
    /// (which carries the serial spine: root-level combines and chain
    /// vertices). Each entry excludes time its own nested children
    /// consumed, so entries never double-count work.
    pub worker_busy_nanos: Vec<u64>,
    /// CPU nanoseconds of the most expensive single task the work-stealing
    /// scheduler executed (a model call, or a fold cascade reaching the
    /// root); `0` for sequential and static runs. An indivisible-work floor
    /// for the modeled makespan.
    pub max_task_nanos: u64,
}

impl SelectStats {
    /// Cache hit rate in `[0, 1]`; `0` when the run made no cacheable
    /// `accel` calls.
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }

    /// Wall-clock seconds of the whole run.
    pub fn wall_seconds(&self) -> f64 {
        self.wall_nanos as f64 * 1e-9
    }

    /// Seconds spent in the accelerator model (CPU time summed over
    /// threads, so this can exceed [`wall_seconds`](Self::wall_seconds) when
    /// `threads > 1`).
    pub fn model_seconds(&self) -> f64 {
        self.model_nanos as f64 * 1e-9
    }

    /// Seconds spent combining/filtering Pareto sequences (summed over
    /// threads).
    pub fn combine_seconds(&self) -> f64 {
        self.combine_nanos as f64 * 1e-9
    }

    /// Total worker CPU seconds — the parallelisable work the schedulers
    /// distribute. `0` for sequential runs (no workers were spawned).
    pub fn busy_seconds(&self) -> f64 {
        self.worker_busy_nanos.iter().sum::<u64>() as f64 * 1e-9
    }

    /// Modeled makespan in seconds: how long the run would take on a host
    /// with at least `threads` free cores. `0` for sequential runs.
    ///
    /// For the static splitter the busiest recorded thread *is* the model:
    /// the partition is fixed up front, so whichever chunk (or the caller's
    /// serial spine) carries the most CPU time bounds the run.
    ///
    /// For the work-stealing scheduler the per-worker split measured on an
    /// oversubscribed host is an artefact of OS scheduling — one worker can
    /// drain every queue before the others are even dispatched — so the
    /// greedy-scheduling bound `max(total work / workers, most expensive
    /// single task)` is used instead. Both terms are measured CPU time, and
    /// the bound never exceeds the busiest worker.
    pub fn makespan_seconds(&self) -> f64 {
        let n = self.worker_busy_nanos.len();
        if n == 0 {
            return 0.0;
        }
        if self.scheduler == "steal" {
            let ideal = self.busy_seconds() / n as f64;
            ideal.max(self.max_task_nanos as f64 * 1e-9)
        } else {
            self.worker_busy_nanos[0] as f64 * 1e-9
        }
    }

    /// Load balance in `(0, 1]`: total busy time over `workers × busiest
    /// worker`. `1.0` means every worker carried the same load (and for runs
    /// with no workers, where there is nothing to balance).
    pub fn load_balance(&self) -> f64 {
        let n = self.worker_busy_nanos.len();
        if n == 0 || self.worker_busy_nanos[0] == 0 {
            return 1.0;
        }
        self.busy_seconds() / (n as f64 * self.makespan_seconds())
    }

    /// The top-k `accel(v, R)` breakdown as printable lines, most expensive
    /// first. Empty when the run was fully memoised (no model invocations).
    pub fn top_accel_lines(&self) -> Vec<String> {
        self.top_accel
            .iter()
            .map(|c| {
                format!(
                    "{:<32} {:>9.3} ms {:>4} designs",
                    c.label,
                    c.nanos as f64 * 1e-6,
                    c.designs
                )
            })
            .collect()
    }
}

impl fmt::Display for SelectStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "visited {} (pruned {}), configs {} ({} modeled), cache {}/{} hit ({:.0}%), \
             model {:.2}ms + combine {:.2}ms, wall {:.2}ms on {} thread(s)",
            self.visited,
            self.pruned,
            self.configs_considered,
            self.configs_evaluated,
            self.cache_hits,
            self.cache_hits + self.cache_misses,
            self.cache_hit_rate() * 100.0,
            self.model_seconds() * 1e3,
            self.combine_seconds() * 1e3,
            self.wall_seconds() * 1e3,
            self.threads.max(1),
        )?;
        if !self.scheduler.is_empty() {
            write!(f, " [{}]", self.scheduler)?;
        }
        if !self.worker_busy_nanos.is_empty() {
            write!(f, ", balance {:.2}", self.load_balance())?;
        }
        Ok(())
    }
}

/// The live, thread-shared accumulator behind [`SelectStats`]. All updates
/// are relaxed atomics: counters are independent, and the final snapshot
/// happens after every worker has joined (scoped threads), so no ordering
/// stronger than `Relaxed` is needed.
#[derive(Debug)]
pub(crate) struct AtomicStats {
    pub visited: AtomicUsize,
    pub pruned: AtomicUsize,
    pub configs_considered: AtomicUsize,
    pub configs_evaluated: AtomicUsize,
    pub cache_hits: AtomicU64,
    pub cache_misses: AtomicU64,
    pub model_nanos: AtomicU64,
    pub combine_nanos: AtomicU64,
    /// Candidate pool for the top-k `accel` breakdown (most expensive
    /// first, label as tiebreak). Bounded by the pool itself: model
    /// invocations are orders of magnitude more expensive than the push, so
    /// contention is negligible.
    top_accel: TopPool<AccelCallStat>,
    /// One busy-CPU-nanoseconds entry per worker (pushed once at worker
    /// exit, so contention is a non-issue).
    worker_busy: Mutex<Vec<u64>>,
    /// CPU nanoseconds of the most expensive single scheduler task seen so
    /// far (work-stealing runs only).
    max_task: AtomicU64,
}

impl Default for AtomicStats {
    fn default() -> Self {
        AtomicStats {
            visited: AtomicUsize::new(0),
            pruned: AtomicUsize::new(0),
            configs_considered: AtomicUsize::new(0),
            configs_evaluated: AtomicUsize::new(0),
            cache_hits: AtomicU64::new(0),
            cache_misses: AtomicU64::new(0),
            model_nanos: AtomicU64::new(0),
            combine_nanos: AtomicU64::new(0),
            top_accel: TopPool::new(TOP_ACCEL_K, |a, b| {
                b.nanos.cmp(&a.nanos).then_with(|| a.label.cmp(&b.label))
            }),
            worker_busy: Mutex::new(Vec::new()),
            max_task: AtomicU64::new(0),
        }
    }
}

impl AtomicStats {
    pub fn add_usize(counter: &AtomicUsize, n: usize) {
        counter.fetch_add(n, Ordering::Relaxed);
    }

    pub fn add_u64(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }

    /// Records one `accel(v, R)` model invocation for the top-k breakdown.
    pub fn record_accel(&self, label: String, nanos: u64, designs: usize) {
        self.top_accel.push(AccelCallStat {
            label,
            nanos,
            designs,
        });
    }

    /// Records one scheduler task's CPU time; keeps the maximum.
    pub fn record_task_nanos(&self, nanos: u64) {
        self.max_task.fetch_max(nanos, Ordering::Relaxed);
    }

    /// Records one worker thread's busy CPU time, called as the worker
    /// exits.
    pub fn record_worker_busy(&self, nanos: u64) {
        self.worker_busy
            .lock()
            .expect("stats mutex poisoned")
            .push(nanos);
    }

    /// Freezes the accumulator into a snapshot.
    pub fn snapshot(
        &self,
        wall_nanos: u64,
        threads: usize,
        scheduler: &'static str,
    ) -> SelectStats {
        let top_accel = self.top_accel.snapshot();
        let mut worker_busy = self
            .worker_busy
            .lock()
            .expect("stats mutex poisoned")
            .clone();
        worker_busy.sort_unstable_by(|a, b| b.cmp(a));
        SelectStats {
            visited: self.visited.load(Ordering::Relaxed),
            pruned: self.pruned.load(Ordering::Relaxed),
            configs_considered: self.configs_considered.load(Ordering::Relaxed),
            configs_evaluated: self.configs_evaluated.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.cache_misses.load(Ordering::Relaxed),
            model_nanos: self.model_nanos.load(Ordering::Relaxed),
            combine_nanos: self.combine_nanos.load(Ordering::Relaxed),
            wall_nanos,
            threads,
            top_accel,
            scheduler,
            worker_busy_nanos: worker_busy,
            max_task_nanos: self.max_task.load(Ordering::Relaxed),
        }
    }
}

/// CPU time consumed by the calling thread, in nanoseconds — now provided
/// by the shared observability substrate so busy accounting and trace
/// timestamps come from the same clock family.
pub(crate) use cayman_obs::thread_cpu_nanos;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_rate_handles_empty_and_mixed() {
        let mut s = SelectStats::default();
        assert_eq!(s.cache_hit_rate(), 0.0);
        s.cache_hits = 3;
        s.cache_misses = 1;
        assert!((s.cache_hit_rate() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn snapshot_carries_all_counters() {
        let a = AtomicStats::default();
        AtomicStats::add_usize(&a.visited, 5);
        AtomicStats::add_usize(&a.pruned, 2);
        AtomicStats::add_usize(&a.configs_considered, 10);
        AtomicStats::add_usize(&a.configs_evaluated, 7);
        AtomicStats::add_u64(&a.cache_hits, 4);
        AtomicStats::add_u64(&a.cache_misses, 6);
        AtomicStats::add_u64(&a.model_nanos, 1_000);
        AtomicStats::add_u64(&a.combine_nanos, 2_000);
        a.record_worker_busy(300);
        a.record_worker_busy(900);
        a.record_worker_busy(600);
        a.record_task_nanos(400);
        a.record_task_nanos(700);
        a.record_task_nanos(250);
        let s = a.snapshot(5_000, 4, "steal");
        assert_eq!(s.visited, 5);
        assert_eq!(s.pruned, 2);
        assert_eq!(s.configs_considered, 10);
        assert_eq!(s.configs_evaluated, 7);
        assert_eq!(s.cache_hits, 4);
        assert_eq!(s.cache_misses, 6);
        assert_eq!(s.wall_nanos, 5_000);
        assert_eq!(s.threads, 4);
        assert_eq!(s.scheduler, "steal");
        assert_eq!(s.worker_busy_nanos, vec![900, 600, 300], "sorted desc");
        assert_eq!(s.max_task_nanos, 700, "fetch_max keeps the largest task");
        assert!((s.busy_seconds() - 1_800e-9).abs() < 1e-15);
        // steal: greedy bound = max(1800/3, 700) = 700ns
        assert!((s.makespan_seconds() - 700e-9).abs() < 1e-15);
        assert!((s.load_balance() - 1800.0 / (3.0 * 700.0)).abs() < 1e-12);
        // static: the busiest recorded thread bounds the run
        let mut st = s.clone();
        st.scheduler = "static";
        assert!((st.makespan_seconds() - 900e-9).abs() < 1e-15);
        // steal with no dominant task: ideal split = 1800/3 = 600ns
        let mut even = s.clone();
        even.max_task_nanos = 0;
        assert!((even.makespan_seconds() - 600e-9).abs() < 1e-15);
        // the Display line mentions the key numbers
        let line = s.to_string();
        assert!(line.contains("visited 5"), "{line}");
        assert!(line.contains("40%"), "{line}");
        assert!(line.contains("[steal]"), "{line}");
        assert!(line.contains("balance"), "{line}");
    }

    #[test]
    fn busy_helpers_handle_no_workers() {
        let s = SelectStats::default();
        assert_eq!(s.busy_seconds(), 0.0);
        assert_eq!(s.makespan_seconds(), 0.0);
        assert_eq!(s.load_balance(), 1.0);
        assert!(!s.to_string().contains("balance"));
    }

    #[test]
    fn thread_cpu_clock_is_monotone_and_advances() {
        let a = thread_cpu_nanos();
        let mut x = 0u64;
        for i in 0..2_000_000u64 {
            x = x.wrapping_add(i ^ x.rotate_left(7));
        }
        std::hint::black_box(x);
        let b = thread_cpu_nanos();
        assert!(b > a, "spin consumed no CPU time ({a} → {b})");
    }

    #[test]
    fn top_accel_is_sorted_bounded_and_deterministic() {
        let a = AtomicStats::default();
        // Overflow the pool to exercise the bounded-truncate path.
        for i in 0..(4 * TOP_ACCEL_K + 10) {
            a.record_accel(format!("f#v{i}"), (i as u64 % 37) * 1000, i);
        }
        a.record_accel("hot#v0".into(), 1_000_000, 3);
        let s = a.snapshot(1, 1, "seq");
        assert_eq!(s.top_accel.len(), TOP_ACCEL_K);
        assert_eq!(s.top_accel[0].label, "hot#v0");
        assert_eq!(s.top_accel[0].designs, 3);
        for w in s.top_accel.windows(2) {
            assert!(w[0].nanos >= w[1].nanos, "descending cost order");
        }
        let lines = s.top_accel_lines();
        assert_eq!(lines.len(), TOP_ACCEL_K);
        assert!(lines[0].contains("hot#v0"), "{}", lines[0]);
        assert!(lines[0].contains("designs"), "{}", lines[0]);
    }
}
