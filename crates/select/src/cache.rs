//! A thread-safe, memoising design cache for `accel(v, R)`.
//!
//! The selection DP invokes the accelerator model at every unpruned wPST
//! vertex, and the evaluation protocol re-runs selection many times over the
//! same application — once per framework (Cayman / NOVIA / QsCores), once
//! per ablation point, once per α or budget sweep step. The model's output
//! for a candidate depends only on
//!
//! * the model identity and its options ([`ModelId`]), and
//! * the candidate itself ([`CandidateKey`]: function, block set, profile),
//!
//! given fixed per-function analysis inputs — so repeated invocations can be
//! answered from a memo table instead of re-running scheduling, pipelining
//! and interface assignment.
//!
//! A cache is only valid for one analysed application (one
//! module + profile): the keys do not capture `FuncInputs`. Owners that
//! re-analyse must start from a fresh cache (the `cayman` facade ties one
//! cache to one `Framework`, which owns exactly one analysed application).

use cayman_hls::design::AcceleratorDesign;
use cayman_hls::inputs::CandidateKey;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Identity of an accelerator model instance: a model name plus a
/// fingerprint of its options (`0` for option-free models).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ModelId {
    /// Static model name (`"cayman"`, `"novia"`, `"qscores"`, …).
    pub name: &'static str,
    /// Fingerprint of the model's options
    /// (`cayman_hls::interface::ModelOptions::fingerprint`), or `0`.
    pub options: u64,
}

/// Full cache key: model identity × candidate identity.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct DesignKey {
    /// Which model produced the designs.
    pub model: ModelId,
    /// Which candidate they were produced for.
    pub candidate: CandidateKey,
}

/// Memoised `accel(v, R)` results, shareable across selection runs and
/// across threads within a run.
///
/// Entries are `Arc`ed so hits hand out cheap clones of the design vector.
/// Hit/miss counters are global to the cache (lifetime totals); per-run
/// counts are tracked by the DP's own stats.
#[derive(Debug, Default)]
pub struct DesignCache {
    entries: Mutex<HashMap<DesignKey, Arc<Vec<AcceleratorDesign>>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl DesignCache {
    /// An empty cache.
    pub fn new() -> Self {
        DesignCache::default()
    }

    /// Looks up memoised designs, counting a hit or a miss.
    pub fn lookup(&self, key: &DesignKey) -> Option<Arc<Vec<AcceleratorDesign>>> {
        let found = self
            .entries
            .lock()
            .expect("design cache poisoned")
            .get(key)
            .cloned();
        match &found {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    /// Memoises `designs` under `key`. Concurrent inserts of the same key
    /// are benign: models are deterministic, so both values are identical
    /// and last-writer-wins is safe.
    pub fn insert(
        &self,
        key: DesignKey,
        designs: Vec<AcceleratorDesign>,
    ) -> Arc<Vec<AcceleratorDesign>> {
        let arc = Arc::new(designs);
        self.entries
            .lock()
            .expect("design cache poisoned")
            .insert(key, Arc::clone(&arc));
        arc
    }

    /// Number of memoised candidate entries.
    pub fn len(&self) -> usize {
        self.entries.lock().expect("design cache poisoned").len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lifetime `(hits, misses)` over all lookups.
    pub fn totals(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }

    /// Drops all entries and resets the lifetime counters.
    pub fn clear(&self) {
        self.entries.lock().expect("design cache poisoned").clear();
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cayman_ir::{BlockId, FuncId};

    fn key(func: u32, entries: u64) -> DesignKey {
        DesignKey {
            model: ModelId {
                name: "test",
                options: 1,
            },
            candidate: CandidateKey {
                func: FuncId(func),
                blocks: vec![BlockId(0), BlockId(1)],
                entries,
                cpu_cycles: 100,
                is_bb: false,
            },
        }
    }

    #[test]
    fn lookup_insert_roundtrip_and_counters() {
        let cache = DesignCache::new();
        assert!(cache.is_empty());
        assert!(cache.lookup(&key(0, 1)).is_none());
        cache.insert(key(0, 1), Vec::new());
        let hit = cache.lookup(&key(0, 1)).expect("hit");
        assert!(hit.is_empty());
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.totals(), (1, 1));
        // distinct candidate → distinct entry
        assert!(cache.lookup(&key(0, 2)).is_none());
        cache.insert(key(0, 2), Vec::new());
        assert_eq!(cache.len(), 2);
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.totals(), (0, 0));
    }

    #[test]
    fn model_identity_partitions_the_cache() {
        let cache = DesignCache::new();
        let mut a = key(0, 1);
        cache.insert(a.clone(), Vec::new());
        a.model = ModelId {
            name: "other",
            options: 1,
        };
        assert!(cache.lookup(&a).is_none(), "different model must miss");
        a.model = ModelId {
            name: "test",
            options: 2,
        };
        assert!(cache.lookup(&a).is_none(), "different options must miss");
    }
}
