//! A thread-safe, memoising design cache for `accel(v, R)`.
//!
//! The selection DP invokes the accelerator model at every unpruned wPST
//! vertex, and the evaluation protocol re-runs selection many times over the
//! same application — once per framework (Cayman / NOVIA / QsCores), once
//! per ablation point, once per α or budget sweep step. The model's output
//! for a candidate depends only on
//!
//! * the model identity and its options ([`ModelId`]), and
//! * the candidate itself ([`CandidateKey`]: function, block set, profile),
//!
//! given fixed per-function analysis inputs — so repeated invocations can be
//! answered from a memo table instead of re-running scheduling, pipelining
//! and interface assignment.
//!
//! A cache is only valid for one analysed application (one
//! module + profile): the keys do not capture `FuncInputs`. Owners that
//! re-analyse must start from a fresh cache (the `cayman` facade ties one
//! cache to one `Framework`, which owns exactly one analysed application).

use cayman_hls::design::AcceleratorDesign;
use cayman_hls::inputs::CandidateKey;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Identity of an accelerator model instance: a model name plus a
/// fingerprint of its options (`0` for option-free models).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ModelId {
    /// Static model name (`"cayman"`, `"novia"`, `"qscores"`, …).
    pub name: &'static str,
    /// Fingerprint of the model's options
    /// (`cayman_hls::interface::ModelOptions::fingerprint`), or `0`.
    pub options: u64,
}

/// Full cache key: model identity × candidate identity.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct DesignKey {
    /// Which model produced the designs.
    pub model: ModelId,
    /// Which candidate they were produced for.
    pub candidate: CandidateKey,
}

/// Number of independent lock stripes. A power of two so the stripe pick is
/// a mask; 16 stripes keep the probability of two of ≤16 workers colliding
/// on one lock low without bloating the cache with empty maps.
const STRIPES: usize = 16;

/// 64-bit FNV-1a — a deterministic, dependency-free [`Hasher`] so stripe
/// assignment is stable across runs and processes (the `HashMap`s inside
/// each stripe still use `RandomState`; only the stripe pick needs to be
/// deterministic).
struct Fnv1a(u64);

impl Hasher for Fnv1a {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }
}

/// Which lock stripe a key lives on.
fn stripe_of(key: &DesignKey) -> usize {
    let mut h = Fnv1a(0xCBF2_9CE4_8422_2325);
    key.hash(&mut h);
    // splitmix64 finaliser: FNV-1a's low bits alone mix the tail weakly.
    let mut z = h.finish();
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z as usize) & (STRIPES - 1)
}

/// Memoised `accel(v, R)` results, shareable across selection runs and
/// across threads within a run.
///
/// Entries are `Arc`ed so hits hand out cheap clones of the design vector.
/// The table is sharded into [`STRIPES`] independently locked stripes keyed
/// by a deterministic hash of the [`DesignKey`], so parallel workers probing
/// different candidates do not serialise on one global lock. Hit/miss
/// counters are global to the cache (lifetime totals) and are bumped outside
/// the critical section; per-run counts are tracked by the DP's own stats.
#[derive(Debug)]
pub struct DesignCache {
    stripes: [Mutex<HashMap<DesignKey, Arc<Vec<AcceleratorDesign>>>>; STRIPES],
    hits: AtomicU64,
    misses: AtomicU64,
}

impl Default for DesignCache {
    fn default() -> Self {
        DesignCache {
            stripes: std::array::from_fn(|_| Mutex::new(HashMap::new())),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }
}

impl DesignCache {
    /// An empty cache.
    pub fn new() -> Self {
        DesignCache::default()
    }

    /// Looks up memoised designs, counting a hit or a miss. Only the key's
    /// stripe is locked, and only for the probe itself.
    pub fn lookup(&self, key: &DesignKey) -> Option<Arc<Vec<AcceleratorDesign>>> {
        let found = {
            let stripe = self.stripes[stripe_of(key)]
                .lock()
                .expect("design cache poisoned");
            stripe.get(key).cloned()
        };
        match &found {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    /// Memoises `designs` under `key`. Concurrent inserts of the same key
    /// are benign: models are deterministic, so both values are identical
    /// and last-writer-wins is safe.
    pub fn insert(
        &self,
        key: DesignKey,
        designs: Vec<AcceleratorDesign>,
    ) -> Arc<Vec<AcceleratorDesign>> {
        let arc = Arc::new(designs);
        self.stripes[stripe_of(&key)]
            .lock()
            .expect("design cache poisoned")
            .insert(key, Arc::clone(&arc));
        arc
    }

    /// Number of memoised candidate entries, summed over stripes.
    pub fn len(&self) -> usize {
        self.stripes
            .iter()
            .map(|s| s.lock().expect("design cache poisoned").len())
            .sum()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lifetime `(hits, misses)` over all lookups.
    pub fn totals(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }

    /// Drops all entries and resets the lifetime counters.
    pub fn clear(&self) {
        for stripe in &self.stripes {
            stripe.lock().expect("design cache poisoned").clear();
        }
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cayman_ir::{BlockId, FuncId};

    fn key(func: u32, entries: u64) -> DesignKey {
        DesignKey {
            model: ModelId {
                name: "test",
                options: 1,
            },
            candidate: CandidateKey {
                func: FuncId(func),
                content_fp: 0xfeed,
                blocks: vec![BlockId(0), BlockId(1)],
                entries,
                cpu_cycles: 100,
                is_bb: false,
            },
        }
    }

    #[test]
    fn lookup_insert_roundtrip_and_counters() {
        let cache = DesignCache::new();
        assert!(cache.is_empty());
        assert!(cache.lookup(&key(0, 1)).is_none());
        cache.insert(key(0, 1), Vec::new());
        let hit = cache.lookup(&key(0, 1)).expect("hit");
        assert!(hit.is_empty());
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.totals(), (1, 1));
        // distinct candidate → distinct entry
        assert!(cache.lookup(&key(0, 2)).is_none());
        cache.insert(key(0, 2), Vec::new());
        assert_eq!(cache.len(), 2);
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.totals(), (0, 0));
    }

    #[test]
    fn model_identity_partitions_the_cache() {
        let cache = DesignCache::new();
        let mut a = key(0, 1);
        cache.insert(a.clone(), Vec::new());
        a.model = ModelId {
            name: "other",
            options: 1,
        };
        assert!(cache.lookup(&a).is_none(), "different model must miss");
        a.model = ModelId {
            name: "test",
            options: 2,
        };
        assert!(cache.lookup(&a).is_none(), "different options must miss");
    }

    #[test]
    fn stripe_assignment_is_deterministic_and_spreads() {
        let keys: Vec<DesignKey> = (0..64).map(|i| key(i, u64::from(i))).collect();
        let stripes: Vec<usize> = keys.iter().map(stripe_of).collect();
        // stable across repeated hashing
        assert_eq!(stripes, keys.iter().map(stripe_of).collect::<Vec<_>>());
        let used: std::collections::HashSet<usize> = stripes.iter().copied().collect();
        assert!(
            used.len() > STRIPES / 2,
            "64 distinct keys landed on only {} stripe(s)",
            used.len()
        );
        assert!(used.iter().all(|&s| s < STRIPES));
    }

    #[test]
    fn striped_cache_survives_concurrent_mixed_use() {
        let cache = DesignCache::new();
        for i in 0..64 {
            cache.insert(key(i, 1), Vec::new());
        }
        assert_eq!(cache.len(), 64);
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let cache = &cache;
                s.spawn(move || {
                    for i in 0..64 {
                        assert!(cache.lookup(&key(i, 1)).is_some(), "pre-seeded key missing");
                        cache.insert(key(i, t + 2), Vec::new());
                    }
                });
            }
        });
        assert_eq!(cache.len(), 64 * 5, "64 seeded + 4×64 distinct inserts");
        let (hits, misses) = cache.totals();
        assert_eq!((hits, misses), (4 * 64, 0));
        cache.clear();
        assert!(cache.is_empty());
    }
}
