//! A thread-safe, memoising design cache for `accel(v, R)`.
//!
//! The selection DP invokes the accelerator model at every unpruned wPST
//! vertex, and the evaluation protocol re-runs selection many times over the
//! same application — once per framework (Cayman / NOVIA / QsCores), once
//! per ablation point, once per α or budget sweep step. The model's output
//! for a candidate depends only on
//!
//! * the model identity and its options ([`ModelId`]), and
//! * the candidate itself ([`CandidateKey`]: function, block set, profile),
//!
//! given fixed per-function analysis inputs — so repeated invocations can be
//! answered from a memo table instead of re-running scheduling, pipelining
//! and interface assignment.
//!
//! A cache is only valid for one analysed application (one
//! module + profile): the keys do not capture `FuncInputs`. Owners that
//! re-analyse must start from a fresh cache (the `cayman` facade ties one
//! cache to one `Framework`, which owns exactly one analysed application).
//!
//! ## Two levels
//!
//! The in-memory stripes can be backed by a persistent second level through
//! [`DesignStoreBackend`] (implemented by `cayman-store`'s content-addressed
//! disk store). The cache is **write-through**: every insert is forwarded to
//! the backing store, and a memory miss consults the store before reporting
//! a miss, promoting disk hits into the missing stripe. Keys carry a content
//! fingerprint of the analysed function, so a persistent entry is valid for
//! every process that analyses the same function with the same model — which
//! is exactly what makes the store shareable across processes.

use cayman_hls::design::AcceleratorDesign;
use cayman_hls::inputs::CandidateKey;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Identity of an accelerator model instance: a model name plus a
/// fingerprint of its options (`0` for option-free models).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ModelId {
    /// Static model name (`"cayman"`, `"novia"`, `"qscores"`, …).
    pub name: &'static str,
    /// Fingerprint of the model's options
    /// (`cayman_hls::interface::ModelOptions::fingerprint`), or `0`.
    pub options: u64,
}

/// Full cache key: model identity × candidate identity.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct DesignKey {
    /// Which model produced the designs.
    pub model: ModelId,
    /// Which candidate they were produced for.
    pub candidate: CandidateKey,
}

/// A persistent second level under the in-memory stripes.
///
/// Implementations must be corruption-tolerant (a bad entry is a miss,
/// never a panic) and safe for concurrent use from many threads and many
/// processes. `save` is called with the designs the model just produced;
/// models are deterministic, so concurrent saves of the same key write
/// identical bytes and last-writer-wins is safe.
pub trait DesignStoreBackend: Send + Sync + std::fmt::Debug {
    /// Loads the memoised designs for `key`, or `None` on any kind of miss
    /// (absent, corrupt, version-mismatched, hash-collided).
    fn load(&self, key: &DesignKey) -> Option<Vec<AcceleratorDesign>>;
    /// Persists `designs` under `key`. Failures are swallowed (the store is
    /// an optimisation, not a source of truth).
    fn save(&self, key: &DesignKey, designs: &[AcceleratorDesign]);
}

/// Number of independent lock stripes. A power of two so the stripe pick is
/// a mask; 16 stripes keep the probability of two of ≤16 workers colliding
/// on one lock low without bloating the cache with empty maps.
const STRIPES: usize = 16;

/// 64-bit FNV-1a — a deterministic, dependency-free [`Hasher`] so stripe
/// assignment is stable across runs and processes (the `HashMap`s inside
/// each stripe still use `RandomState`; only the stripe pick needs to be
/// deterministic).
struct Fnv1a(u64);

impl Hasher for Fnv1a {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }
}

/// Which lock stripe a key lives on.
fn stripe_of(key: &DesignKey) -> usize {
    let mut h = Fnv1a(0xCBF2_9CE4_8422_2325);
    key.hash(&mut h);
    // splitmix64 finaliser: FNV-1a's low bits alone mix the tail weakly.
    let mut z = h.finish();
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z as usize) & (STRIPES - 1)
}

/// One lock stripe: its map plus lifetime counters, bumped outside the
/// critical section.
#[derive(Debug, Default)]
struct Stripe {
    map: Mutex<HashMap<DesignKey, Arc<Vec<AcceleratorDesign>>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    inserts: AtomicU64,
}

/// Lifetime counters of one stripe, snapshotted by [`DesignCache::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StripeStats {
    /// Lookups answered from this stripe's map.
    pub hits: u64,
    /// Lookups that missed this stripe's map (disk hits still count a
    /// memory-level miss here; see [`CacheStats::disk_hits`]).
    pub misses: u64,
    /// Map writes (model inserts and disk-hit promotions).
    pub inserts: u64,
    /// Entries currently held.
    pub entries: usize,
}

/// A consistent-enough snapshot of the cache's lifetime counters, per
/// stripe plus the store level — memory-level and store-level hit rates are
/// separately computable (`table2 --json` prints this).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Per-stripe counters, in stripe order (length [`STRIPES`]).
    pub stripes: Vec<StripeStats>,
    /// Memory-level misses answered by the backing store.
    pub disk_hits: u64,
    /// Memory-level misses the backing store also missed.
    pub disk_misses: u64,
}

impl CacheStats {
    /// Total memory-level hits over all stripes.
    pub fn hits(&self) -> u64 {
        self.stripes.iter().map(|s| s.hits).sum()
    }

    /// Total memory-level misses over all stripes.
    pub fn misses(&self) -> u64 {
        self.stripes.iter().map(|s| s.misses).sum()
    }

    /// Total map writes over all stripes.
    pub fn inserts(&self) -> u64 {
        self.stripes.iter().map(|s| s.inserts).sum()
    }

    /// Total entries currently held.
    pub fn entries(&self) -> usize {
        self.stripes.iter().map(|s| s.entries).sum()
    }

    /// Number of stripes holding at least one entry (spread indicator).
    pub fn stripes_used(&self) -> usize {
        self.stripes.iter().filter(|s| s.entries > 0).count()
    }

    /// The snapshot as named counter series, in the shape the metrics
    /// exposition wants (`caymand`'s `Request::Metrics` pushes these
    /// verbatim; `cache.entries` is a point-in-time value but rendered as
    /// a counter series for uniformity of the aggregated snapshot).
    pub fn counters(&self) -> [(&'static str, u64); 6] {
        [
            ("cache.mem.hits", self.hits()),
            ("cache.mem.misses", self.misses()),
            ("cache.mem.inserts", self.inserts()),
            ("cache.entries", self.entries() as u64),
            ("cache.disk.hits", self.disk_hits),
            ("cache.disk.misses", self.disk_misses),
        ]
    }

    /// Accumulates another snapshot into this one (summary rows over many
    /// frameworks).
    pub fn merge(&mut self, other: &CacheStats) {
        if self.stripes.len() < other.stripes.len() {
            self.stripes
                .resize(other.stripes.len(), StripeStats::default());
        }
        for (a, b) in self.stripes.iter_mut().zip(&other.stripes) {
            a.hits += b.hits;
            a.misses += b.misses;
            a.inserts += b.inserts;
            a.entries += b.entries;
        }
        self.disk_hits += other.disk_hits;
        self.disk_misses += other.disk_misses;
    }
}

/// Memoised `accel(v, R)` results, shareable across selection runs and
/// across threads within a run.
///
/// Entries are `Arc`ed so hits hand out cheap clones of the design vector.
/// The table is sharded into [`STRIPES`] independently locked stripes keyed
/// by a deterministic hash of the [`DesignKey`], so parallel workers probing
/// different candidates do not serialise on one global lock. Hit/miss/insert
/// counters are per stripe (lifetime totals) and are bumped outside the
/// critical section; per-run counts are tracked by the DP's own stats.
///
/// An optional [`DesignStoreBackend`] turns the cache into the first level
/// of a two-level hierarchy (see the module docs).
#[derive(Debug, Default)]
pub struct DesignCache {
    stripes: [Stripe; STRIPES],
    disk_hits: AtomicU64,
    disk_misses: AtomicU64,
    backing: Option<Arc<dyn DesignStoreBackend>>,
}

impl DesignCache {
    /// An empty cache with no backing store.
    pub fn new() -> Self {
        DesignCache::default()
    }

    /// Attaches a persistent second level. Subsequent inserts write through
    /// to it and memory misses consult it. Intended to be called once,
    /// before the cache warms.
    pub fn set_backing(&mut self, backing: Arc<dyn DesignStoreBackend>) {
        self.backing = Some(backing);
    }

    /// Whether a backing store is attached.
    pub fn has_backing(&self) -> bool {
        self.backing.is_some()
    }

    /// Looks up memoised designs, counting a hit or a miss. Only the key's
    /// stripe is locked, and only for the probe itself. On a memory miss
    /// the backing store (when attached) is consulted and a disk hit is
    /// promoted into the stripe.
    pub fn lookup(&self, key: &DesignKey) -> Option<Arc<Vec<AcceleratorDesign>>> {
        let stripe = &self.stripes[stripe_of(key)];
        let found = {
            let map = stripe.map.lock().expect("design cache poisoned");
            map.get(key).cloned()
        };
        if let Some(designs) = found {
            stripe.hits.fetch_add(1, Ordering::Relaxed);
            return Some(designs);
        }
        stripe.misses.fetch_add(1, Ordering::Relaxed);
        let backing = self.backing.as_ref()?;
        match backing.load(key) {
            Some(designs) => {
                self.disk_hits.fetch_add(1, Ordering::Relaxed);
                let arc = Arc::new(designs);
                stripe.inserts.fetch_add(1, Ordering::Relaxed);
                stripe
                    .map
                    .lock()
                    .expect("design cache poisoned")
                    .insert(key.clone(), Arc::clone(&arc));
                Some(arc)
            }
            None => {
                self.disk_misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Memoises `designs` under `key`, writing through to the backing store
    /// when one is attached. Concurrent inserts of the same key are benign:
    /// models are deterministic, so both values are identical and
    /// last-writer-wins is safe.
    pub fn insert(
        &self,
        key: DesignKey,
        designs: Vec<AcceleratorDesign>,
    ) -> Arc<Vec<AcceleratorDesign>> {
        if let Some(backing) = &self.backing {
            backing.save(&key, &designs);
        }
        let arc = Arc::new(designs);
        let stripe = &self.stripes[stripe_of(&key)];
        stripe.inserts.fetch_add(1, Ordering::Relaxed);
        stripe
            .map
            .lock()
            .expect("design cache poisoned")
            .insert(key, Arc::clone(&arc));
        arc
    }

    /// Number of memoised candidate entries, summed over stripes.
    pub fn len(&self) -> usize {
        self.stripes
            .iter()
            .map(|s| s.map.lock().expect("design cache poisoned").len())
            .sum()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lifetime `(hits, misses)` over all lookups. A lookup answered by the
    /// backing store counts as a memory-level miss here (the caller still
    /// received designs; see [`DesignCache::stats`] to tell the levels
    /// apart).
    pub fn totals(&self) -> (u64, u64) {
        let mut hits = 0;
        let mut misses = 0;
        for s in &self.stripes {
            hits += s.hits.load(Ordering::Relaxed);
            misses += s.misses.load(Ordering::Relaxed);
        }
        (hits, misses)
    }

    /// Snapshot of every stripe's lifetime counters plus the store-level
    /// hit/miss totals.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            stripes: self
                .stripes
                .iter()
                .map(|s| StripeStats {
                    hits: s.hits.load(Ordering::Relaxed),
                    misses: s.misses.load(Ordering::Relaxed),
                    inserts: s.inserts.load(Ordering::Relaxed),
                    entries: s.map.lock().expect("design cache poisoned").len(),
                })
                .collect(),
            disk_hits: self.disk_hits.load(Ordering::Relaxed),
            disk_misses: self.disk_misses.load(Ordering::Relaxed),
        }
    }

    /// Drops all in-memory entries and resets the lifetime counters. The
    /// backing store (when attached) keeps its entries: clearing memory is
    /// a per-process operation, the store is shared.
    pub fn clear(&self) {
        for stripe in &self.stripes {
            stripe.map.lock().expect("design cache poisoned").clear();
            stripe.hits.store(0, Ordering::Relaxed);
            stripe.misses.store(0, Ordering::Relaxed);
            stripe.inserts.store(0, Ordering::Relaxed);
        }
        self.disk_hits.store(0, Ordering::Relaxed);
        self.disk_misses.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cayman_ir::{BlockId, FuncId};

    fn key(func: u32, entries: u64) -> DesignKey {
        DesignKey {
            model: ModelId {
                name: "test",
                options: 1,
            },
            candidate: CandidateKey {
                func: FuncId(func),
                content_fp: 0xfeed,
                blocks: vec![BlockId(0), BlockId(1)],
                entries,
                cpu_cycles: 100,
                is_bb: false,
            },
        }
    }

    #[test]
    fn lookup_insert_roundtrip_and_counters() {
        let cache = DesignCache::new();
        assert!(cache.is_empty());
        assert!(cache.lookup(&key(0, 1)).is_none());
        cache.insert(key(0, 1), Vec::new());
        let hit = cache.lookup(&key(0, 1)).expect("hit");
        assert!(hit.is_empty());
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.totals(), (1, 1));
        // distinct candidate → distinct entry
        assert!(cache.lookup(&key(0, 2)).is_none());
        cache.insert(key(0, 2), Vec::new());
        assert_eq!(cache.len(), 2);
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.totals(), (0, 0));
    }

    #[test]
    fn model_identity_partitions_the_cache() {
        let cache = DesignCache::new();
        let mut a = key(0, 1);
        cache.insert(a.clone(), Vec::new());
        a.model = ModelId {
            name: "other",
            options: 1,
        };
        assert!(cache.lookup(&a).is_none(), "different model must miss");
        a.model = ModelId {
            name: "test",
            options: 2,
        };
        assert!(cache.lookup(&a).is_none(), "different options must miss");
    }

    #[test]
    fn stripe_assignment_is_deterministic_and_spreads() {
        let keys: Vec<DesignKey> = (0..64).map(|i| key(i, u64::from(i))).collect();
        let stripes: Vec<usize> = keys.iter().map(stripe_of).collect();
        // stable across repeated hashing
        assert_eq!(stripes, keys.iter().map(stripe_of).collect::<Vec<_>>());
        let used: std::collections::HashSet<usize> = stripes.iter().copied().collect();
        assert!(
            used.len() > STRIPES / 2,
            "64 distinct keys landed on only {} stripe(s)",
            used.len()
        );
        assert!(used.iter().all(|&s| s < STRIPES));
    }

    #[test]
    fn striped_cache_survives_concurrent_mixed_use() {
        let cache = DesignCache::new();
        for i in 0..64 {
            cache.insert(key(i, 1), Vec::new());
        }
        assert_eq!(cache.len(), 64);
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let cache = &cache;
                s.spawn(move || {
                    for i in 0..64 {
                        assert!(cache.lookup(&key(i, 1)).is_some(), "pre-seeded key missing");
                        cache.insert(key(i, t + 2), Vec::new());
                    }
                });
            }
        });
        assert_eq!(cache.len(), 64 * 5, "64 seeded + 4×64 distinct inserts");
        let (hits, misses) = cache.totals();
        assert_eq!((hits, misses), (4 * 64, 0));
        cache.clear();
        assert!(cache.is_empty());
    }

    #[test]
    fn stats_snapshot_sums_match_totals() {
        let cache = DesignCache::new();
        for i in 0..32 {
            cache.lookup(&key(i, 1));
            cache.insert(key(i, 1), Vec::new());
            cache.lookup(&key(i, 1));
        }
        let stats = cache.stats();
        assert_eq!(stats.stripes.len(), STRIPES);
        assert_eq!((stats.hits(), stats.misses()), cache.totals());
        assert_eq!(stats.hits(), 32);
        assert_eq!(stats.misses(), 32);
        assert_eq!(stats.inserts(), 32);
        assert_eq!(stats.entries(), cache.len());
        assert!(stats.stripes_used() > 1, "32 keys spread over stripes");
        assert_eq!((stats.disk_hits, stats.disk_misses), (0, 0));
        let mut merged = stats.clone();
        merged.merge(&stats);
        assert_eq!(merged.hits(), 64);
        assert_eq!(merged.entries(), 2 * cache.len());
    }

    /// An in-memory [`DesignStoreBackend`] for exercising the write-through
    /// and promote paths without touching disk.
    #[derive(Debug, Default)]
    struct MapStore {
        entries: Mutex<HashMap<DesignKey, Vec<AcceleratorDesign>>>,
        loads: AtomicU64,
        saves: AtomicU64,
    }

    impl DesignStoreBackend for MapStore {
        fn load(&self, key: &DesignKey) -> Option<Vec<AcceleratorDesign>> {
            self.loads.fetch_add(1, Ordering::Relaxed);
            self.entries.lock().unwrap().get(key).cloned()
        }

        fn save(&self, key: &DesignKey, designs: &[AcceleratorDesign]) {
            self.saves.fetch_add(1, Ordering::Relaxed);
            self.entries
                .lock()
                .unwrap()
                .insert(key.clone(), designs.to_vec());
        }
    }

    #[test]
    fn write_through_backing_promotes_on_memory_miss() {
        let store = Arc::new(MapStore::default());
        let mut warm = DesignCache::new();
        warm.set_backing(Arc::clone(&store) as Arc<dyn DesignStoreBackend>);
        assert!(warm.has_backing());

        // miss both levels, then write through
        assert!(warm.lookup(&key(0, 1)).is_none());
        warm.insert(key(0, 1), Vec::new());
        assert_eq!(store.saves.load(Ordering::Relaxed), 1);
        assert_eq!(warm.stats().disk_misses, 1);

        // a fresh cache over the same store: memory misses, store hits,
        // entry promoted so the second lookup never reaches the store
        let mut fresh = DesignCache::new();
        fresh.set_backing(Arc::clone(&store) as Arc<dyn DesignStoreBackend>);
        assert!(fresh.lookup(&key(0, 1)).is_some(), "disk hit serves lookup");
        let loads_after_promote = store.loads.load(Ordering::Relaxed);
        assert!(fresh.lookup(&key(0, 1)).is_some());
        assert_eq!(
            store.loads.load(Ordering::Relaxed),
            loads_after_promote,
            "promoted entry answers from memory"
        );
        let stats = fresh.stats();
        assert_eq!(stats.disk_hits, 1);
        assert_eq!(stats.misses(), 1, "only the first probe missed memory");
        assert_eq!(stats.hits(), 1);
        assert_eq!(stats.entries(), 1);
    }
}
