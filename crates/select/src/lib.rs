//! # cayman-select
//!
//! Candidate selection for the Cayman reproduction (paper §III-D): the wPST
//! is a tree-constrained knapsack — every region vertex is an item whose
//! profit is the modelled time saving and whose weight is the accelerator
//! area, with the constraint that selecting a vertex excludes all of its
//! descendants.
//!
//! * [`mod@pareto`] — [`pareto::Solution`]s, Pareto reduction, the α-spacing
//!   `filter`, and the `⊗` combination operator,
//! * [`dp`] — Algorithm 1 ([`dp::run_selection`]) with heuristic pruning,
//!   parallel subtree evaluation ([`dp::SelectOptions::threads`]) and design
//!   memoisation,
//! * [`cache`] — the thread-safe [`cache::DesignCache`] memoising
//!   `accel(v, R)` results across selection runs,
//! * [`stats`] — the [`stats::SelectStats`] observability snapshot carried
//!   on every [`dp::SelectionResult`].
//!
//! See [`dp::SelectionResult::best_under`] for extracting the best solution
//! under an area budget (the paper's 25% / 65% CVA6-tile budgets).

pub mod cache;
pub mod dp;
pub mod pareto;
pub mod sched;
pub mod stats;

pub use cache::{CacheStats, DesignCache, DesignKey, DesignStoreBackend, ModelId, StripeStats};
pub use dp::{
    run_selection, run_selection_cached, run_selection_with, run_selection_with_fronts, AccelModel,
    CaymanModel, FrontKey, FrontStore, SelectOptions, SelectionResult,
};
pub use pareto::{combine, filter, pareto, SelectedKernel, Solution};
pub use sched::SchedKind;
pub use stats::{AccelCallStat, SelectStats, TOP_ACCEL_K};
