//! Determinism guarantees of the selection DP on real benchmarks:
//!
//! * the Pareto front is **bit-identical** across thread budgets — parallel
//!   subtree evaluation must not change float summation order,
//! * a warm design cache reproduces the cold run's front exactly, while
//!   skipping every model invocation.

use cayman::{Framework, SelectOptions, Solution};

/// Representative polybench workloads: a flat multi-kernel app (atax), a
/// deep chained one (3mm), and a stencil (jacobi-2d).
const WORKLOADS: [&str; 3] = ["atax", "3mm", "jacobi-2d"];

fn assert_fronts_bit_identical(a: &[Solution], b: &[Solution], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: front lengths differ");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(
            x.area.to_bits(),
            y.area.to_bits(),
            "{what}: area differs at solution {i}"
        );
        assert_eq!(
            x.saved_seconds.to_bits(),
            y.saved_seconds.to_bits(),
            "{what}: saving differs at solution {i}"
        );
        assert_eq!(
            x.kernels.len(),
            y.kernels.len(),
            "{what}: kernel count at {i}"
        );
        for (k, l) in x.kernels.iter().zip(&y.kernels) {
            assert_eq!(k.node, l.node, "{what}: kernel node at {i}");
            assert_eq!(
                k.design.blocks, l.design.blocks,
                "{what}: kernel blocks at {i}"
            );
            assert_eq!(
                k.design.unroll, l.design.unroll,
                "{what}: kernel unroll at {i}"
            );
        }
    }
}

#[test]
fn parallel_selection_is_deterministic_on_real_workloads() {
    for name in WORKLOADS {
        let w = cayman::workloads::by_name(name).expect("workload exists");
        let fw = Framework::from_workload(&w).expect("analyses");
        let seq = fw.select(&SelectOptions::default());
        assert!(seq.pareto.len() > 1, "{name}: selection found solutions");
        for threads in [2usize, 4, 7] {
            let par = fw.select(&SelectOptions {
                threads,
                ..Default::default()
            });
            assert_fronts_bit_identical(
                &seq.pareto,
                &par.pareto,
                &format!("{name} threads={threads}"),
            );
            assert_eq!(par.visited, seq.visited, "{name}: visited count");
            assert_eq!(
                par.configs_evaluated, seq.configs_evaluated,
                "{name}: configs considered"
            );
        }
    }
}

#[test]
fn warm_cache_selection_is_exact_on_real_workloads() {
    for name in WORKLOADS {
        let w = cayman::workloads::by_name(name).expect("workload exists");
        let fw = Framework::from_workload(&w).expect("analyses");
        let opts = SelectOptions::default();
        let cold = fw.select(&opts);
        assert!(cold.stats.cache_misses > 0, "{name}: cold run misses");
        assert_eq!(cold.stats.cache_hits, 0, "{name}: cold run has no hits");
        let warm = fw.select(&opts);
        assert_fronts_bit_identical(&cold.pareto, &warm.pareto, &format!("{name} warm"));
        assert_eq!(
            warm.stats.cache_misses, 0,
            "{name}: warm run fully memoised"
        );
        assert_eq!(
            warm.stats.cache_hits, cold.stats.cache_misses,
            "{name}: hit count mirrors cold misses"
        );
        assert_eq!(
            warm.stats.configs_evaluated, 0,
            "{name}: warm run never invokes the model"
        );
        // counters the DP derives from design flow stay identical
        assert_eq!(warm.configs_evaluated, cold.configs_evaluated, "{name}");
        assert_eq!(warm.visited, cold.visited, "{name}");
    }
}

#[test]
fn parallel_and_cached_combine() {
    // threads > 1 against a warm cache — the fast path used by sweep
    // drivers — still reproduces the sequential cold front exactly.
    let w = cayman::workloads::by_name("atax").expect("atax");
    let fw = Framework::from_workload(&w).expect("analyses");
    let cold = fw.select(&SelectOptions::default());
    let fast = fw.select(&SelectOptions {
        threads: 4,
        ..Default::default()
    });
    assert_fronts_bit_identical(&cold.pareto, &fast.pareto, "atax parallel+warm");
    assert_eq!(fast.stats.cache_misses, 0);
    assert_eq!(fast.stats.threads, 4);
}
