//! Every text-fixture corpus kernel must survive the full pipeline:
//! parse → verify → profile → analyse → select (and a merge of the best
//! solution). This is the acceptance gate that keeps a broken `.cir` file
//! from landing.

use cayman::{Framework, SelectOptions};

#[test]
fn every_corpus_kernel_selects_end_to_end() {
    let ws = cayman::workloads::corpus::corpus();
    assert!(ws.len() >= 100, "corpus shrank: {}", ws.len());
    let opts = SelectOptions::default();
    for w in ws {
        let fw = Framework::from_workload(&w)
            .unwrap_or_else(|e| panic!("{}: pipeline front-end failed: {e}", w.name));
        assert_eq!(fw.profiling_engine(), "decoded", "{}", w.name);
        let sel = fw.select(&opts);
        assert!(
            !sel.pareto.is_empty(),
            "{}: selection produced no solutions",
            w.name
        );
        let best = sel.best_under(f64::INFINITY);
        let merged = fw.merge(best);
        assert!(
            merged.area_after <= merged.area_before,
            "{}: merging increased area",
            w.name
        );
    }
}

#[test]
fn from_text_runs_the_same_pipeline_as_the_registry() {
    let w = cayman::workloads::by_name("fsm-scan").expect("corpus kernel registered");
    let via_workload = Framework::from_workload(&w).expect("analyses");
    let via_text = Framework::from_text(&w.module.to_text()).expect("analyses from text");
    let opts = SelectOptions::default();
    let a = via_workload.select(&opts);
    let b = via_text.select(&opts);
    assert_eq!(a.pareto.len(), b.pareto.len());
    for (x, y) in a.pareto.iter().zip(&b.pareto) {
        assert_eq!(x.area.to_bits(), y.area.to_bits());
        assert_eq!(x.saved_seconds.to_bits(), y.saved_seconds.to_bits());
    }
}

#[test]
fn from_text_reports_parse_errors() {
    let err = Framework::from_text("fn @broken() -> void {\n").unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("parsing failed"), "{msg}");
}
