//! End-to-end RTL generation through the facade: every kernel of a selected
//! solution yields a Verilog module, merged groups yield reusable wrappers.

use cayman::{Framework, SelectOptions, CVA6_TILE_AREA};

#[test]
fn three_mm_emits_kernels_and_a_reusable_wrapper() {
    let w = cayman::workloads::by_name("3mm").expect("exists");
    let fw = Framework::from_workload(&w).expect("analyses");
    let sel = fw.select(&SelectOptions::default());
    let sol = sel.best_under(0.25 * CVA6_TILE_AREA);
    assert!(sol.kernels.len() >= 3, "3mm selects all three kernels");

    let rtl = fw.emit_rtl(sol);
    // one module per kernel + at least one reusable wrapper
    assert!(rtl.len() > sol.kernels.len(), "{} modules", rtl.len());
    let mut saw_reusable = false;
    for (name, src) in &rtl {
        assert!(
            src.contains(&format!("module {}", sanitised(name))),
            "{name}"
        );
        assert!(src.trim_end().ends_with("endmodule"), "{name}");
        // balanced module/endmodule
        assert_eq!(
            src.matches("\nmodule ").count() + usize::from(src.starts_with("module ")),
            src.matches("endmodule").count(),
            "{name}"
        );
        if name.starts_with("reusable") {
            saw_reusable = true;
            assert!(src.contains("kernel_sel"), "{name} lacks kernel selector");
            assert!(src.contains("cfg_in"), "{name} lacks config port");
        }
    }
    assert!(
        saw_reusable,
        "merged 3mm must produce a reusable accelerator"
    );
}

#[test]
fn rtl_names_are_unique() {
    let w = cayman::workloads::by_name("cjpeg").expect("exists");
    let fw = Framework::from_workload(&w).expect("analyses");
    let sel = fw.select(&SelectOptions::default());
    let sol = sel.best_under(0.65 * CVA6_TILE_AREA);
    let rtl = fw.emit_rtl(sol);
    let mut names: Vec<&String> = rtl.iter().map(|(n, _)| n).collect();
    let before = names.len();
    names.sort();
    names.dedup();
    assert_eq!(names.len(), before, "duplicate module names");
}

#[test]
fn empty_solution_emits_nothing() {
    let w = cayman::workloads::by_name("trisolv").expect("exists");
    let fw = Framework::from_workload(&w).expect("analyses");
    let empty = cayman::Solution::empty();
    assert!(fw.emit_rtl(&empty).is_empty());
}

fn sanitised(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect()
}
