//! The analysed application: one-stop ownership of everything the selection
//! and merging stages consume.

use crate::CaymanError;
use cayman_analysis::access::{trip_count, AccessAnalysis};
use cayman_analysis::memdep::{analyse_loop_deps, LoopDeps};
use cayman_analysis::profile::Profile;
use cayman_analysis::scev::Scev;
use cayman_analysis::wpst::Wpst;
use cayman_hls::inputs::FuncInputs;
use cayman_ir::interp::{ExecProfile, Interp, Memory};
use cayman_ir::transform::{normalize, OptLevel, PipelineStats};
use cayman_ir::Module;

/// Options for [`Application::analyse_with`]: how the explicit pipeline
/// stages (verify → normalize → profile → analyse) are run.
#[derive(Debug, Clone, Default)]
pub struct AnalyseOptions {
    /// IR normalization level applied after verification and before
    /// profiling (default `O1`).
    pub opt_level: OptLevel,
    /// Re-run the verifier after every changing normalization pass
    /// (differential/debug runs; off by default).
    pub verify_each_pass: bool,
}

impl AnalyseOptions {
    /// Options with normalization disabled (`-O0`).
    pub fn o0() -> Self {
        AnalyseOptions {
            opt_level: OptLevel::O0,
            ..AnalyseOptions::default()
        }
    }
}

/// A verified, profiled and analysed application — the paper's "profiling
/// and analysis results R" plus the wPST, ready for Algorithm 1.
pub struct Application {
    /// The program (after normalization — analyses refer to this module,
    /// not the pre-normalization input).
    pub module: Module,
    /// Whole-application program structure tree.
    pub wpst: Wpst,
    /// Region-level profile.
    pub profile: Profile,
    /// Raw execution profile (per-block counts, total cycles).
    pub exec: ExecProfile,
    /// Per-function memory-access analysis.
    pub accesses: Vec<AccessAnalysis>,
    /// Per-function loop-carried dependence analysis.
    pub deps: Vec<Vec<LoopDeps>>,
    /// Per-function loop trip counts (static preferred, profiled fallback).
    pub trips: Vec<Vec<f64>>,
    /// Which interpreter engine produced the profile (`"decoded"` unless the
    /// module fell back to the reference walker).
    pub profiling_engine: &'static str,
    /// Per-pass counters and timings from the normalization stage (empty at
    /// `-O0`).
    pub normalize_stats: PipelineStats,
}

impl std::fmt::Debug for Application {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Application")
            .field("module", &self.module.name)
            .field("functions", &self.module.functions.len())
            .field("wpst_regions", &self.wpst.region_count())
            .field("total_cycles", &self.profile.total_cycles)
            .finish()
    }
}

impl Application {
    /// Verifies, normalizes (default `-O1`), profiles (with zeroed memory)
    /// and analyses a module.
    ///
    /// # Errors
    ///
    /// Fails when verification or interpretation fails.
    pub fn analyse(module: Module) -> Result<Self, CaymanError> {
        Self::analyse_with(module, None, &AnalyseOptions::default())
    }

    /// Like [`Application::analyse`] but with a caller-provided input memory
    /// image (benchmark inputs).
    ///
    /// # Errors
    ///
    /// Fails when verification or interpretation fails.
    pub fn analyse_with_memory(
        module: Module,
        memory: Option<Memory>,
    ) -> Result<Self, CaymanError> {
        Self::analyse_with(module, memory, &AnalyseOptions::default())
    }

    /// The full staged pipeline, explicitly:
    ///
    /// 1. **verify** — reject malformed modules up front;
    /// 2. **normalize** — run the [`cayman_ir::transform`] pipeline at
    ///    `opts.opt_level` (observable behavior is preserved, so profiling
    ///    results describe the same program);
    /// 3. **profile** — execute under the decoded interpreter (which decodes
    ///    the *normalized* module) against `memory` or a zeroed image;
    /// 4. **analyse** — build the wPST, region profile, access/dependence
    ///    analyses and trip counts consumed by Algorithm 1.
    ///
    /// # Errors
    ///
    /// Fails when verification (including inter-pass verification with
    /// `opts.verify_each_pass`) or interpretation fails.
    pub fn analyse_with(
        mut module: Module,
        memory: Option<Memory>,
        opts: &AnalyseOptions,
    ) -> Result<Self, CaymanError> {
        // Stage 1: verify.
        {
            let _s = cayman_obs::span!("analyse.verify");
            module.verify()?;
        }

        // Stage 2: normalize.
        let normalize_stats = {
            let _s = cayman_obs::span!("analyse.normalize");
            normalize(&mut module, opts.opt_level, opts.verify_each_pass)?
        };

        // Stage 3: profile.
        let (wpst, exec, profile, profiling_engine) = {
            let _s = cayman_obs::span!("analyse.profile");
            let wpst = Wpst::build(&module);
            let mut interp = Interp::new(&module);
            let profiling_engine = interp.engine_name();
            if let Some(mem) = memory {
                interp.memory = mem;
            }
            let exec = interp.run(&[])?;
            let profile = Profile::aggregate(&module, &wpst, &exec);
            (wpst, exec, profile, profiling_engine)
        };

        // Stage 4: analyse.
        let dataflow = cayman_obs::span!("analyse.dataflow");
        let mut accesses = Vec::new();
        let mut deps = Vec::new();
        let mut trips = Vec::new();
        for f in module.function_ids() {
            let func = module.function(f);
            let ctx = &wpst.func_ctxs[f.index()];
            let mut scev = Scev::new(func, ctx);
            let aa = AccessAnalysis::run(&module, func, ctx, &mut scev);
            let dd = analyse_loop_deps(func, ctx, &mut scev, &aa);
            let tt: Vec<f64> = ctx
                .forest
                .ids()
                .map(|l| trip_count(&wpst, &profile, func, f, l).unwrap_or(1.0))
                .collect();
            accesses.push(aa);
            deps.push(dd);
            trips.push(tt);
        }
        drop(dataflow);

        Ok(Application {
            module,
            wpst,
            profile,
            exec,
            accesses,
            deps,
            trips,
            profiling_engine,
            normalize_stats,
        })
    }

    /// Per-function model inputs (borrowing this application).
    pub fn inputs(&self) -> Vec<FuncInputs<'_>> {
        self.module
            .function_ids()
            .map(|f| FuncInputs {
                module: &self.module,
                func_id: f,
                ctx: &self.wpst.func_ctxs[f.index()],
                accesses: &self.accesses[f.index()],
                deps: &self.deps[f.index()],
                trips: self.trips[f.index()].clone(),
                block_counts: self.profile.block_counts[f.index()].clone(),
            })
            .collect()
    }

    /// Total profiled CPU cycles (`T_all · F_cpu`).
    pub fn total_cycles(&self) -> u64 {
        self.profile.total_cycles
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cayman_ir::builder::ModuleBuilder;
    use cayman_ir::Type;

    #[test]
    fn analyse_builds_everything() {
        let mut mb = ModuleBuilder::new("t");
        let x = mb.array("x", Type::F64, &[16]);
        mb.function("main", &[], None, |fb| {
            fb.counted_loop(0, 16, 1, |fb, i| {
                let v = fb.load_idx(x, &[i]);
                fb.store_idx(x, &[i], v);
            });
            fb.ret(None);
        });
        let app = Application::analyse(mb.finish()).expect("analyses");
        assert_eq!(app.accesses.len(), 1);
        assert_eq!(app.trips[0], vec![16.0]);
        assert!(app.total_cycles() > 0);
        assert_eq!(app.inputs().len(), 1);
        // Verified modules always profile under the decoded engine.
        assert_eq!(app.profiling_engine, "decoded");
    }

    #[test]
    fn staged_analyse_normalizes_at_o1_but_not_o0() {
        // A module with a constant-foldable chain and a duplicate address
        // computation: -O1 must shrink it, -O0 must profile it verbatim, and
        // both must agree on observable results.
        let mut mb = ModuleBuilder::new("t");
        let x = mb.array("x", Type::F64, &[16]);
        mb.function("main", &[], Some(Type::F64), |fb| {
            let init = fb.fconst(0.0);
            let f = fb.counted_loop_carry(0, 16, 1, &[(Type::F64, init)], |fb, i, c| {
                let a = fb.load_idx(x, &[i]);
                let b = fb.load_idx(x, &[i]); // duplicate gep for GVN
                let k = fb.fmul(fb.fconst(2.0), fb.fconst(1.5)); // folds to 3.0
                let t = fb.fmul(a, k);
                let u = fb.fadd(t, b);
                vec![fb.fadd(c[0], u)]
            });
            fb.ret(Some(f[0]));
        });
        let module = mb.finish();

        let raw = Application::analyse_with(module.clone(), None, &AnalyseOptions::o0())
            .expect("analyses at O0");
        let opts = AnalyseOptions {
            verify_each_pass: true,
            ..AnalyseOptions::default()
        };
        let opt = Application::analyse_with(module.clone(), None, &opts).expect("analyses at O1");

        // O0 leaves the module exactly as built; O1 shrinks it.
        assert_eq!(raw.normalize_stats.iterations, 0);
        assert_eq!(raw.module.to_text(), module.to_text());
        assert!(opt.normalize_stats.total_changes() > 0);
        assert!(opt.normalize_stats.verify_runs > 0);
        let count = |m: &Module| m.functions.iter().map(|f| f.instr_count()).sum::<usize>();
        assert!(
            count(&opt.module) < count(&raw.module),
            "O1 should drop instructions: {} vs {}",
            count(&opt.module),
            count(&raw.module)
        );

        // Same observable outcome either way (zeroed memory → 0.0).
        assert_eq!(raw.exec.return_value, opt.exec.return_value);
        // Analyses cover the same structure.
        assert_eq!(raw.trips[0], opt.trips[0]);
        assert_eq!(raw.accesses.len(), opt.accesses.len());
    }

    #[test]
    fn broken_module_is_rejected() {
        let mut mb = ModuleBuilder::new("t");
        mb.function("main", &[], None, |fb| {
            fb.new_block("orphan");
            fb.ret(None);
        });
        assert!(Application::analyse(mb.finish()).is_err());
    }
}
