//! The analysed application: one-stop ownership of everything the selection
//! and merging stages consume.

use crate::inc::QueryStore;
use crate::CaymanError;
use cayman_analysis::access::AccessAnalysis;
use cayman_analysis::memdep::LoopDeps;
use cayman_analysis::profile::Profile;
use cayman_analysis::wpst::Wpst;
use cayman_hls::inputs::FuncInputs;
use cayman_ir::interp::{ExecProfile, Memory};
use cayman_ir::transform::{OptLevel, PipelineStats};
use cayman_ir::Module;
use std::sync::Arc;

/// Options for [`Application::analyse_with`]: how the explicit pipeline
/// stages (verify → normalize → profile → analyse) are run.
#[derive(Debug, Clone, Default)]
pub struct AnalyseOptions {
    /// IR normalization level applied after verification and before
    /// profiling (default `O1`).
    pub opt_level: OptLevel,
    /// Re-run the verifier after every changing normalization pass
    /// (differential/debug runs; off by default).
    pub verify_each_pass: bool,
}

impl AnalyseOptions {
    /// Options with normalization disabled (`-O0`).
    pub fn o0() -> Self {
        AnalyseOptions {
            opt_level: OptLevel::O0,
            ..AnalyseOptions::default()
        }
    }

    /// Options with the analysis-side `-O2` canonicalization enabled: the
    /// *executed* module is still the `-O1` body (profiles and observable
    /// behavior are bit-identical to `-O1`), but access/dependence analysis
    /// runs over an identity-preserving strength-reduce + LICM shadow of
    /// each function, so SCEV proves strides the raw body hides.
    pub fn o2() -> Self {
        AnalyseOptions {
            opt_level: OptLevel::O2,
            ..AnalyseOptions::default()
        }
    }
}

/// A verified, profiled and analysed application — the paper's "profiling
/// and analysis results R" plus the wPST, ready for Algorithm 1.
pub struct Application {
    /// The program (after normalization — analyses refer to this module,
    /// not the pre-normalization input).
    pub module: Module,
    /// Whole-application program structure tree.
    pub wpst: Wpst,
    /// Region-level profile.
    pub profile: Profile,
    /// Raw execution profile (per-block counts, total cycles).
    pub exec: ExecProfile,
    /// Per-function memory-access analysis.
    pub accesses: Vec<AccessAnalysis>,
    /// Per-function loop-carried dependence analysis.
    pub deps: Vec<Vec<LoopDeps>>,
    /// Per-function loop trip counts (static preferred, profiled fallback).
    pub trips: Vec<Vec<f64>>,
    /// Which interpreter engine produced the profile (`"decoded"` unless the
    /// module fell back to the reference walker).
    pub profiling_engine: &'static str,
    /// Per-pass counters and timings from the normalization stage (empty at
    /// `-O0`).
    pub normalize_stats: PipelineStats,
    /// Per-function content fingerprints of the *normalized* functions —
    /// the content keys the incremental store and the selection-front/design
    /// caches are addressed by. At `-O2` a function whose analysis shadow
    /// differs from its executed body carries a mix of both fingerprints,
    /// so cached designs/fronts never conflate the two levels' facts.
    pub content_fps: Vec<u64>,
}

impl std::fmt::Debug for Application {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Application")
            .field("module", &self.module.name)
            .field("functions", &self.module.functions.len())
            .field("wpst_regions", &self.wpst.region_count())
            .field("total_cycles", &self.profile.total_cycles)
            .finish()
    }
}

impl Application {
    /// Verifies, normalizes (default `-O1`), profiles (with zeroed memory)
    /// and analyses a module.
    ///
    /// # Errors
    ///
    /// Fails when verification or interpretation fails.
    pub fn analyse(module: Module) -> Result<Self, CaymanError> {
        Self::analyse_with(module, None, &AnalyseOptions::default())
    }

    /// Like [`Application::analyse`] but with a caller-provided input memory
    /// image (benchmark inputs).
    ///
    /// # Errors
    ///
    /// Fails when verification or interpretation fails.
    pub fn analyse_with_memory(
        module: Module,
        memory: Option<Memory>,
    ) -> Result<Self, CaymanError> {
        Self::analyse_with(module, memory, &AnalyseOptions::default())
    }

    /// The full staged pipeline, explicitly:
    ///
    /// 1. **verify** — reject malformed modules up front;
    /// 2. **normalize** — run the [`cayman_ir::transform`] pipeline at
    ///    `opts.opt_level` (observable behavior is preserved, so profiling
    ///    results describe the same program);
    /// 3. **profile** — execute under the decoded interpreter (which decodes
    ///    the *normalized* module) against `memory` or a zeroed image;
    /// 4. **analyse** — build the wPST, region profile, access/dependence
    ///    analyses and trip counts consumed by Algorithm 1.
    ///
    /// The stages are implemented as the keyed queries of
    /// [`crate::inc`] — this batch entry assembles over a transient
    /// cold [`QueryStore`] (every query misses exactly once), while
    /// [`crate::inc::IncrementalApp`] keeps a store alive across edits so
    /// repeated analyses only re-execute the queries whose content keys
    /// changed. Both paths produce bit-identical applications.
    ///
    /// # Errors
    ///
    /// Fails when verification (including inter-pass verification with
    /// `opts.verify_each_pass`) or interpretation fails.
    pub fn analyse_with(
        module: Module,
        memory: Option<Memory>,
        opts: &AnalyseOptions,
    ) -> Result<Self, CaymanError> {
        let mut store = QueryStore::new();
        let raw_fps: Vec<u64> = module
            .functions
            .iter()
            .map(cayman_ir::fingerprint_function)
            .collect();
        let memory_fp = memory
            .as_ref()
            .map(cayman_ir::fingerprint_memory)
            .unwrap_or(0);
        let app = crate::inc::assemble(
            &mut store,
            &module,
            memory.as_ref(),
            memory_fp,
            opts,
            &raw_fps,
        )?;
        // The transient store holds the only other Arc; dropping it makes
        // the application uniquely owned again.
        drop(store);
        Ok(Arc::try_unwrap(app).expect("transient store dropped"))
    }

    /// Per-function model inputs (borrowing this application — trip counts
    /// and block counts are borrowed slices, so building inputs allocates
    /// only the outer vector).
    pub fn inputs(&self) -> Vec<FuncInputs<'_>> {
        self.module
            .function_ids()
            .map(|f| FuncInputs {
                module: &self.module,
                func_id: f,
                ctx: &self.wpst.func_ctxs[f.index()],
                accesses: &self.accesses[f.index()],
                deps: &self.deps[f.index()],
                trips: &self.trips[f.index()],
                block_counts: &self.profile.block_counts[f.index()],
                content_fp: self.content_fps[f.index()],
            })
            .collect()
    }

    /// Total profiled CPU cycles (`T_all · F_cpu`).
    pub fn total_cycles(&self) -> u64 {
        self.profile.total_cycles
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cayman_ir::builder::ModuleBuilder;
    use cayman_ir::Type;

    #[test]
    fn analyse_builds_everything() {
        let mut mb = ModuleBuilder::new("t");
        let x = mb.array("x", Type::F64, &[16]);
        mb.function("main", &[], None, |fb| {
            fb.counted_loop(0, 16, 1, |fb, i| {
                let v = fb.load_idx(x, &[i]);
                fb.store_idx(x, &[i], v);
            });
            fb.ret(None);
        });
        let app = Application::analyse(mb.finish()).expect("analyses");
        assert_eq!(app.accesses.len(), 1);
        assert_eq!(app.trips[0], vec![16.0]);
        assert!(app.total_cycles() > 0);
        assert_eq!(app.inputs().len(), 1);
        // Verified modules always profile under the decoded engine.
        assert_eq!(app.profiling_engine, "decoded");
    }

    #[test]
    fn staged_analyse_normalizes_at_o1_but_not_o0() {
        // A module with a constant-foldable chain and a duplicate address
        // computation: -O1 must shrink it, -O0 must profile it verbatim, and
        // both must agree on observable results.
        let mut mb = ModuleBuilder::new("t");
        let x = mb.array("x", Type::F64, &[16]);
        mb.function("main", &[], Some(Type::F64), |fb| {
            let init = fb.fconst(0.0);
            let f = fb.counted_loop_carry(0, 16, 1, &[(Type::F64, init)], |fb, i, c| {
                let a = fb.load_idx(x, &[i]);
                let b = fb.load_idx(x, &[i]); // duplicate gep for GVN
                let k = fb.fmul(fb.fconst(2.0), fb.fconst(1.5)); // folds to 3.0
                let t = fb.fmul(a, k);
                let u = fb.fadd(t, b);
                vec![fb.fadd(c[0], u)]
            });
            fb.ret(Some(f[0]));
        });
        let module = mb.finish();

        let raw = Application::analyse_with(module.clone(), None, &AnalyseOptions::o0())
            .expect("analyses at O0");
        let opts = AnalyseOptions {
            verify_each_pass: true,
            ..AnalyseOptions::default()
        };
        let opt = Application::analyse_with(module.clone(), None, &opts).expect("analyses at O1");

        // O0 leaves the module exactly as built; O1 shrinks it.
        assert_eq!(raw.normalize_stats.iterations, 0);
        assert_eq!(raw.module.to_text(), module.to_text());
        assert!(opt.normalize_stats.total_changes() > 0);
        assert!(opt.normalize_stats.verify_runs > 0);
        let count = |m: &Module| m.functions.iter().map(|f| f.instr_count()).sum::<usize>();
        assert!(
            count(&opt.module) < count(&raw.module),
            "O1 should drop instructions: {} vs {}",
            count(&opt.module),
            count(&raw.module)
        );

        // Same observable outcome either way (zeroed memory → 0.0).
        assert_eq!(raw.exec.return_value, opt.exec.return_value);
        // Analyses cover the same structure.
        assert_eq!(raw.trips[0], opt.trips[0]);
        assert_eq!(raw.accesses.len(), opt.accesses.len());
    }

    #[test]
    fn broken_module_is_rejected() {
        let mut mb = ModuleBuilder::new("t");
        mb.function("main", &[], None, |fb| {
            fb.new_block("orphan");
            fb.ret(None);
        });
        assert!(Application::analyse(mb.finish()).is_err());
    }
}
