//! The analysed application: one-stop ownership of everything the selection
//! and merging stages consume.

use crate::CaymanError;
use cayman_analysis::access::{trip_count, AccessAnalysis};
use cayman_analysis::memdep::{analyse_loop_deps, LoopDeps};
use cayman_analysis::profile::Profile;
use cayman_analysis::scev::Scev;
use cayman_analysis::wpst::Wpst;
use cayman_hls::inputs::FuncInputs;
use cayman_ir::interp::{ExecProfile, Interp, Memory};
use cayman_ir::Module;

/// A verified, profiled and analysed application — the paper's "profiling
/// and analysis results R" plus the wPST, ready for Algorithm 1.
pub struct Application {
    /// The program.
    pub module: Module,
    /// Whole-application program structure tree.
    pub wpst: Wpst,
    /// Region-level profile.
    pub profile: Profile,
    /// Raw execution profile (per-block counts, total cycles).
    pub exec: ExecProfile,
    /// Per-function memory-access analysis.
    pub accesses: Vec<AccessAnalysis>,
    /// Per-function loop-carried dependence analysis.
    pub deps: Vec<Vec<LoopDeps>>,
    /// Per-function loop trip counts (static preferred, profiled fallback).
    pub trips: Vec<Vec<f64>>,
    /// Which interpreter engine produced the profile (`"decoded"` unless the
    /// module fell back to the reference walker).
    pub profiling_engine: &'static str,
}

impl std::fmt::Debug for Application {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Application")
            .field("module", &self.module.name)
            .field("functions", &self.module.functions.len())
            .field("wpst_regions", &self.wpst.region_count())
            .field("total_cycles", &self.profile.total_cycles)
            .finish()
    }
}

impl Application {
    /// Verifies, profiles (with zeroed memory) and analyses a module.
    ///
    /// # Errors
    ///
    /// Fails when verification or interpretation fails.
    pub fn analyse(module: Module) -> Result<Self, CaymanError> {
        Self::analyse_with_memory(module, None)
    }

    /// Like [`Application::analyse`] but with a caller-provided input memory
    /// image (benchmark inputs).
    ///
    /// # Errors
    ///
    /// Fails when verification or interpretation fails.
    pub fn analyse_with_memory(
        module: Module,
        memory: Option<Memory>,
    ) -> Result<Self, CaymanError> {
        module.verify()?;
        let wpst = Wpst::build(&module);
        let mut interp = Interp::new(&module);
        let profiling_engine = interp.engine_name();
        if let Some(mem) = memory {
            interp.memory = mem;
        }
        let exec = interp.run(&[])?;
        let profile = Profile::aggregate(&module, &wpst, &exec);

        let mut accesses = Vec::new();
        let mut deps = Vec::new();
        let mut trips = Vec::new();
        for f in module.function_ids() {
            let func = module.function(f);
            let ctx = &wpst.func_ctxs[f.index()];
            let mut scev = Scev::new(func, ctx);
            let aa = AccessAnalysis::run(&module, func, ctx, &mut scev);
            let dd = analyse_loop_deps(func, ctx, &mut scev, &aa);
            let tt: Vec<f64> = ctx
                .forest
                .ids()
                .map(|l| trip_count(&wpst, &profile, func, f, l).unwrap_or(1.0))
                .collect();
            accesses.push(aa);
            deps.push(dd);
            trips.push(tt);
        }

        Ok(Application {
            module,
            wpst,
            profile,
            exec,
            accesses,
            deps,
            trips,
            profiling_engine,
        })
    }

    /// Per-function model inputs (borrowing this application).
    pub fn inputs(&self) -> Vec<FuncInputs<'_>> {
        self.module
            .function_ids()
            .map(|f| FuncInputs {
                module: &self.module,
                func_id: f,
                ctx: &self.wpst.func_ctxs[f.index()],
                accesses: &self.accesses[f.index()],
                deps: &self.deps[f.index()],
                trips: self.trips[f.index()].clone(),
                block_counts: self.profile.block_counts[f.index()].clone(),
            })
            .collect()
    }

    /// Total profiled CPU cycles (`T_all · F_cpu`).
    pub fn total_cycles(&self) -> u64 {
        self.profile.total_cycles
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cayman_ir::builder::ModuleBuilder;
    use cayman_ir::Type;

    #[test]
    fn analyse_builds_everything() {
        let mut mb = ModuleBuilder::new("t");
        let x = mb.array("x", Type::F64, &[16]);
        mb.function("main", &[], None, |fb| {
            fb.counted_loop(0, 16, 1, |fb, i| {
                let v = fb.load_idx(x, &[i]);
                fb.store_idx(x, &[i], v);
            });
            fb.ret(None);
        });
        let app = Application::analyse(mb.finish()).expect("analyses");
        assert_eq!(app.accesses.len(), 1);
        assert_eq!(app.trips[0], vec![16.0]);
        assert!(app.total_cycles() > 0);
        assert_eq!(app.inputs().len(), 1);
        // Verified modules always profile under the decoded engine.
        assert_eq!(app.profiling_engine, "decoded");
    }

    #[test]
    fn broken_module_is_rejected() {
        let mut mb = ModuleBuilder::new("t");
        mb.function("main", &[], None, |fb| {
            fb.new_block("orphan");
            fb.ret(None);
        });
        assert!(Application::analyse(mb.finish()).is_err());
    }
}
