//! The end-to-end Cayman framework driver (Fig. 1): application in,
//! Pareto-optimal accelerator solutions out, with baseline comparisons and
//! budgeted reports.

use crate::app::{AnalyseOptions, Application};
use crate::CaymanError;
use cayman_baselines::{NoviaModel, QsCoresModel};
use cayman_hls::CVA6_TILE_AREA;
use cayman_merge::{merge_solution, MergeResult};
use cayman_select::{
    run_selection_cached, AccelModel, CacheStats, CaymanModel, DesignCache, DesignStoreBackend,
    SelectOptions, SelectionResult, Solution,
};
use cayman_workloads::Workload;
use std::sync::Arc;

/// The framework: owns an analysed [`Application`] and runs selection,
/// merging and baseline comparisons against it.
///
/// All selection entry points share one [`DesignCache`]: the cache is keyed
/// by model identity × candidate identity and the framework owns exactly one
/// analysed application, so re-running selection (budget sweeps, ablations,
/// repeated reports) memoises every `accel(v, R)` model invocation.
#[derive(Debug)]
pub struct Framework {
    /// The analysed application.
    pub app: Application,
    /// Memoised accelerator designs, shared across selection runs.
    cache: DesignCache,
}

/// Everything Table II reports for one benchmark under one area budget.
#[derive(Debug, Clone)]
pub struct BudgetReport {
    /// Area budget as a fraction of the CVA6 tile.
    pub budget_frac: f64,
    /// Cayman's speedup (Eq. (1)).
    pub speedup: f64,
    /// Solution area (before merging), absolute units.
    pub area: f64,
    /// Number of selected kernels.
    pub kernels: usize,
    /// Sequential basic blocks synthesised (#SB).
    pub sb: usize,
    /// Pipelined regions (#PR).
    pub pr: usize,
    /// Coupled interfaces (#C).
    pub c: usize,
    /// Decoupled interfaces (#D).
    pub d: usize,
    /// Scratchpad-family interfaces (#S: plain, banked, double-buffered).
    pub s: usize,
    /// Line-buffer interfaces (#LB).
    pub lb: usize,
    /// Area saving from accelerator merging, percent.
    pub area_saving_pct: f64,
    /// Number of reusable (merged) accelerators.
    pub reusable: usize,
    /// Average program regions per reusable accelerator.
    pub avg_regions_per_reusable: f64,
}

impl Framework {
    /// Builds the framework from a raw module (zeroed inputs, default
    /// [`AnalyseOptions`]: `-O1`).
    ///
    /// # Errors
    ///
    /// Fails when verification or profiling execution fails.
    pub fn from_module(module: cayman_ir::Module) -> Result<Self, CaymanError> {
        Self::from_module_with(module, &AnalyseOptions::default())
    }

    /// Builds the framework from a raw module with explicit analyse staging
    /// options.
    ///
    /// # Errors
    ///
    /// Fails when verification or profiling execution fails.
    pub fn from_module_with(
        module: cayman_ir::Module,
        opts: &AnalyseOptions,
    ) -> Result<Self, CaymanError> {
        Ok(Framework {
            app: Application::analyse_with(module, None, opts)?,
            cache: DesignCache::new(),
        })
    }

    /// Builds the framework from a textual kernel (the `.cir` fixture
    /// format): parse → verify → profile → analyse, with zeroed inputs and
    /// default [`AnalyseOptions`].
    ///
    /// # Errors
    ///
    /// Fails when parsing, verification or profiling execution fails.
    pub fn from_text(text: &str) -> Result<Self, CaymanError> {
        Self::from_module(cayman_ir::Module::parse_text(text)?)
    }

    /// Builds the framework from a benchmark workload (realistic inputs,
    /// default [`AnalyseOptions`]: `-O1`).
    ///
    /// # Errors
    ///
    /// Fails when verification or profiling execution fails.
    pub fn from_workload(w: &Workload) -> Result<Self, CaymanError> {
        Self::from_workload_with(w, &AnalyseOptions::default())
    }

    /// Builds the framework from a benchmark workload with explicit analyse
    /// staging options.
    ///
    /// # Errors
    ///
    /// Fails when verification or profiling execution fails.
    pub fn from_workload_with(w: &Workload, opts: &AnalyseOptions) -> Result<Self, CaymanError> {
        Ok(Framework {
            app: Application::analyse_with(w.module.clone(), Some(w.memory()), opts)?,
            cache: DesignCache::new(),
        })
    }

    /// The wPST rendered as text (Fig. 2c style).
    pub fn wpst_text(&self) -> String {
        self.app.wpst.to_text(&self.app.module)
    }

    /// Which interpreter engine profiled the application (`"decoded"` for
    /// every verified module).
    pub fn profiling_engine(&self) -> &'static str {
        self.app.profiling_engine
    }

    /// Runs Algorithm 1 with an arbitrary accelerator model against this
    /// framework's shared design cache.
    pub fn select_with(&self, opts: &SelectOptions, model: &dyn AccelModel) -> SelectionResult {
        let inputs = self.app.inputs();
        run_selection_cached(
            &self.app.module,
            &self.app.wpst,
            &self.app.profile,
            &inputs,
            opts,
            model,
            &self.cache,
        )
    }

    /// Runs Cayman's selection (Algorithm 1 with the full accelerator model).
    pub fn select(&self, opts: &SelectOptions) -> SelectionResult {
        self.select_with(opts, &CaymanModel(opts.model.clone()))
    }

    /// Runs selection with the NOVIA baseline model.
    pub fn select_novia(&self, opts: &SelectOptions) -> SelectionResult {
        self.select_with(opts, &NoviaModel)
    }

    /// Runs selection with the QsCores baseline model.
    pub fn select_qscores(&self, opts: &SelectOptions) -> SelectionResult {
        self.select_with(opts, &QsCoresModel)
    }

    /// Backs the design cache with a persistent second level (typically
    /// `cayman-store`'s content-addressed disk store): inserts write
    /// through, memory misses consult the store. Call before the first
    /// selection run so cold evaluations are persisted from the start.
    pub fn set_design_store(&mut self, store: Arc<dyn DesignStoreBackend>) {
        self.cache.set_backing(store);
    }

    /// Whether a persistent design store is attached.
    pub fn has_design_store(&self) -> bool {
        self.cache.has_backing()
    }

    /// Lifetime `(hits, misses)` of the framework's design cache.
    pub fn cache_totals(&self) -> (u64, u64) {
        self.cache.totals()
    }

    /// Per-stripe + store-level counter snapshot of the design cache.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Number of memoised candidate entries in the design cache.
    pub fn cache_len(&self) -> usize {
        self.cache.len()
    }

    /// Drops every memoised design and resets the cache counters, keeping
    /// the persistent backing store (and its contents) attached. The next
    /// selection re-loads designs from the store instead of the model.
    pub fn clear_design_cache(&self) {
        self.cache.clear();
    }

    /// Speedup of a solution for this application (Eq. (1)).
    pub fn speedup(&self, sol: &Solution) -> f64 {
        sol.speedup(self.app.total_cycles())
    }

    /// Merges a solution's accelerators (§III-E).
    pub fn merge(&self, sol: &Solution) -> MergeResult {
        merge_solution(&self.app.module, sol)
    }

    /// Emits structural Verilog for every kernel of a solution, plus a
    /// reusable-accelerator wrapper per merged group (§III-E / Fig. 5).
    ///
    /// Returns `(module_name, verilog_source)` pairs.
    pub fn emit_rtl(&self, sol: &Solution) -> Vec<(String, String)> {
        use cayman_hls::rtl::{emit_reusable_verilog, emit_verilog};
        let mut out = Vec::new();
        let names: Vec<String> = sol
            .kernels
            .iter()
            .enumerate()
            .map(|(i, k)| format!("{}_k{}", self.app.module.function(k.design.func).name, i))
            .collect();
        for (k, name) in sol.kernels.iter().zip(&names) {
            out.push((
                name.clone(),
                emit_verilog(&self.app.module, &k.design, name),
            ));
        }
        let merged = self.merge(sol);
        for (g, group) in merged.reusable.iter().enumerate() {
            let members: Vec<String> = group.kernels.iter().map(|&i| names[i].clone()).collect();
            // Shared FU inventory = union of the group's merged units.
            let mut fus = std::collections::BTreeMap::new();
            let mut cfg_bits = 0u32;
            for u in merged
                .units
                .iter()
                .filter(|u| u.kernels.iter().any(|k| group.kernels.contains(k)))
            {
                for (&c, &n) in &u.classes {
                    let e = fus.entry(c).or_insert(0);
                    *e = (*e).max(n);
                    cfg_bits += n;
                }
            }
            let name = format!("reusable{g}");
            out.push((
                name.clone(),
                emit_reusable_verilog(&members, &fus, cfg_bits.max(1), &name),
            ));
        }
        out
    }

    /// Produces the Table II row data for one budget: selects under
    /// `budget_frac × CVA6_TILE_AREA`, merges, and reports.
    pub fn report(&self, selection: &SelectionResult, budget_frac: f64) -> BudgetReport {
        let budget = budget_frac * CVA6_TILE_AREA;
        let sol = selection.best_under(budget);
        let merged = self.merge(sol);
        let (sb, pr) = sol.sb_pr();
        let (c, d, s, lb) = sol.iface_counts();
        BudgetReport {
            budget_frac,
            speedup: self.speedup(sol),
            area: sol.area,
            kernels: sol.kernels.len(),
            sb,
            pr,
            c,
            d,
            s,
            lb,
            area_saving_pct: merged.saving_fraction() * 100.0,
            reusable: merged.reusable.len(),
            avg_regions_per_reusable: merged.avg_regions_per_reusable(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn end_to_end_on_a_real_benchmark() {
        let w = cayman_workloads::by_name("atax").expect("atax exists");
        let fw = Framework::from_workload(&w).expect("analyses");
        assert_eq!(fw.profiling_engine(), "decoded");
        let opts = SelectOptions::default();
        let cayman = fw.select(&opts);
        let novia = fw.select_novia(&opts);
        let qscores = fw.select_qscores(&opts);

        let budget = 0.25;
        let rc = fw.report(&cayman, budget);
        let rn_sol = novia.best_under(budget * CVA6_TILE_AREA);
        let rq_sol = qscores.best_under(budget * CVA6_TILE_AREA);

        // Cayman beats both baselines on the same budget.
        let sp_c = rc.speedup;
        let sp_n = fw.speedup(rn_sol);
        let sp_q = fw.speedup(rq_sol);
        assert!(sp_c > sp_n, "cayman {sp_c} vs novia {sp_n}");
        assert!(sp_c > sp_q, "cayman {sp_c} vs qscores {sp_q}");
        assert!(sp_c > 1.5, "meaningful acceleration: {sp_c}");
        assert!(rc.area <= budget * CVA6_TILE_AREA);
        assert!(rc.pr > 0, "atax pipelines its loops");
    }

    #[test]
    fn framework_cache_warms_across_selection_runs() {
        let w = cayman_workloads::by_name("atax").expect("atax");
        let fw = Framework::from_workload(&w).expect("analyses");
        let opts = SelectOptions::default();
        let cold = fw.select(&opts);
        assert_eq!(cold.stats.cache_hits, 0);
        assert!(cold.stats.cache_misses > 0);
        assert!(fw.cache_len() > 0);
        let warm = fw.select(&opts);
        assert_eq!(warm.stats.cache_misses, 0, "fully memoised");
        assert!(warm.stats.cache_hits > 0);
        assert_eq!(warm.pareto.len(), cold.pareto.len());
        // baselines use disjoint cache partitions, so they miss (not collide)
        let novia = fw.select_novia(&opts);
        assert_eq!(novia.stats.cache_hits, 0);
        let (hits, misses) = fw.cache_totals();
        assert!(hits > 0 && misses > 0);
    }

    #[test]
    fn schedulers_agree_through_the_framework() {
        use cayman_select::SchedKind;
        let w = cayman_workloads::by_name("atax").expect("atax");
        let fw = Framework::from_workload(&w).expect("analyses");
        let reference = fw.select(&SelectOptions::default());
        for sched in [SchedKind::Static, SchedKind::WorkSteal] {
            for threads in [2usize, 3, 8] {
                let opts = SelectOptions {
                    threads,
                    sched,
                    ..Default::default()
                };
                // The shared design cache is warm after the first run; the
                // front must stay bit-identical regardless of scheduler,
                // thread budget, or cache state.
                let res = fw.select(&opts);
                assert_eq!(res.stats.scheduler, sched.label());
                assert_eq!(res.pareto.len(), reference.pareto.len());
                for (a, b) in res.pareto.iter().zip(&reference.pareto) {
                    assert_eq!(a.area.to_bits(), b.area.to_bits());
                    assert_eq!(a.saved_seconds.to_bits(), b.saved_seconds.to_bits());
                    assert_eq!(a.kernels.len(), b.kernels.len());
                }
                assert_eq!(res.visited, reference.visited);
            }
        }
    }

    #[test]
    fn wpst_text_shows_functions() {
        let w = cayman_workloads::by_name("atax").expect("atax");
        let fw = Framework::from_workload(&w).expect("analyses");
        let text = fw.wpst_text();
        assert!(text.contains("func @atax_kernel"), "{text}");
        assert!(text.contains("ctrl-flow loop"), "{text}");
    }
}
