//! # cayman
//!
//! End-to-end reproduction of **"Cayman: Custom Accelerator Generation with
//! Control Flow and Data Access Optimization"** (DAC 2025).
//!
//! Cayman ingests whole applications, automatically selects program regions
//! for hardware acceleration, and configures accelerators with optimised
//! control flow (loop unrolling + pipelining) and specialised
//! processor–accelerator data-access interfaces (*coupled* / *decoupled* /
//! *scratchpad*), then merges accelerators into reusable, reconfigurable
//! units to save area.
//!
//! This facade crate wires together the substrate crates:
//!
//! | crate | role |
//! |---|---|
//! | `cayman-ir` | typed SSA IR, builder, interpreter/profiler |
//! | `cayman-analysis` | SESE regions, wPST, profiling, SCEV, stream/footprint, mem deps |
//! | `cayman-hls` | accelerator model: scheduling, pipelining, interfaces, estimation |
//! | `cayman-select` | Algorithm 1 — DP candidate selection with Pareto + α-filter |
//! | `cayman-merge` | accelerator merging (§III-E) |
//! | `cayman-baselines` | NOVIA and QsCores models |
//! | `cayman-workloads` | the 28 evaluated benchmark applications |
//!
//! ## Quickstart
//!
//! ```
//! use cayman::{Framework, SelectOptions};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let workload = cayman::workloads::by_name("bicg").expect("bicg exists");
//! let fw = Framework::from_workload(&workload)?;
//! let selection = fw.select(&SelectOptions::default());
//! let report = fw.report(&selection, 0.25); // 25% CVA6-tile budget
//! assert!(report.speedup > 1.0);
//! # Ok(())
//! # }
//! ```

pub mod app;
pub mod framework;
pub mod inc;

use std::error::Error;
use std::fmt;

pub use app::{AnalyseOptions, Application};
pub use cayman_ir::transform::{OptLevel, PipelineStats};
pub use framework::{BudgetReport, Framework};
pub use inc::{Edit, IncStats, IncrementalApp, QueryStore};

// Re-export the sub-crates under stable names so downstream users need only
// one dependency.
pub use cayman_analysis as analysis;
pub use cayman_baselines as baselines;
pub use cayman_hls as hls;
pub use cayman_ir as ir;
pub use cayman_merge as merging;
pub use cayman_select as select;
pub use cayman_workloads as workloads;

// The most commonly used items at the top level.
pub use cayman_hls::interface::ModelOptions;
pub use cayman_hls::CVA6_TILE_AREA;
pub use cayman_select::{
    AccelCallStat, CacheStats, DesignCache, DesignStoreBackend, SchedKind, SelectOptions,
    SelectStats, SelectionResult, Solution, TOP_ACCEL_K,
};

/// Top-level framework error.
#[derive(Debug)]
pub enum CaymanError {
    /// The textual input failed to parse.
    Parse(cayman_ir::parse::ParseError),
    /// The input module failed structural verification.
    Verify(cayman_ir::verify::VerifyError),
    /// Profiling execution failed.
    Interp(cayman_ir::interp::InterpError),
}

impl fmt::Display for CaymanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CaymanError::Parse(e) => write!(f, "parsing failed: {e}"),
            CaymanError::Verify(e) => write!(f, "verification failed: {e}"),
            CaymanError::Interp(e) => write!(f, "profiling execution failed: {e}"),
        }
    }
}

impl Error for CaymanError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CaymanError::Parse(e) => Some(e),
            CaymanError::Verify(e) => Some(e),
            CaymanError::Interp(e) => Some(e),
        }
    }
}

impl From<cayman_ir::parse::ParseError> for CaymanError {
    fn from(e: cayman_ir::parse::ParseError) -> Self {
        CaymanError::Parse(e)
    }
}

impl From<cayman_ir::verify::VerifyError> for CaymanError {
    fn from(e: cayman_ir::verify::VerifyError) -> Self {
        CaymanError::Verify(e)
    }
}

impl From<cayman_ir::interp::InterpError> for CaymanError {
    fn from(e: cayman_ir::interp::InterpError) -> Self {
        CaymanError::Interp(e)
    }
}
