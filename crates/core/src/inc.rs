//! Incremental re-analysis: content-keyed queries with dirty tracking.
//!
//! [`Application::analyse_with`] is no longer a monolithic batch pipeline —
//! it is an *assembly* over keyed queries, each memoised in a
//! [`QueryStore`]:
//!
//! | query | key | value |
//! |---|---|---|
//! | verify | raw module fp | () |
//! | normalize | (raw fn fp, arrays fp, level, verify-each) | normalized `Function` + stats |
//! | shadow | (normalized fn fp, arrays fp) | address-canonicalized `Function` |
//! | structure | normalized fn fp | `FuncCtx` + `RegionTree` |
//! | decode | (normalized fn fp, arrays fp) | decoded interpreter function |
//! | exec | (normalized module fp, memory fp) | `ExecProfile` |
//! | dataflow | (analysis fn fp, arrays fp) | accesses + loop deps |
//! | trips | (normalized fn fp, arrays fp, block-count fp) | trip counts |
//! | app | (raw module fp, memory fp, analyse opts) | `Arc<Application>` |
//! | select | (app key, model fp, α, prune) | `Arc<SelectionResult>` |
//!
//! At `-O2` the *executed* module is still normalized at `-O1` — structure,
//! decode, exec and trips all key off the `-O1` fingerprints, so profiles
//! and observable behavior are bit-identical across the two levels and
//! those caches are shared between them. The extra **shadow** query runs
//! [`PassManager::address_canon`] (strength reduction + LICM, `InstrId`-
//! and CFG-preserving) over a clone of each normalized function; the
//! dataflow query then analyses the shadow, and its facts map back onto the
//! executed body by instruction id. A function's *analysis fingerprint* is
//! its `-O1` fingerprint when canonicalization was a no-op (sharing the
//! dataflow cache with `-O1`), otherwise a mix of the `-O1` and shadow
//! fingerprints — design caches and selection fronts absorb the extra
//! precision through the same content keys as any other edit.
//!
//! Keys are **content fingerprints** ([`cayman_ir::fingerprint_function`]
//! and friends), not revision counters: dirtiness is implicit — an edit
//! changes exactly the fingerprints of what it touched, so the next
//! assembly re-executes exactly the queries whose inputs changed and
//! answers everything else from cache. Content addressing also gives the
//! salsa-style "change it back" green path for free: reverting an edit
//! restores the old fingerprints and every query (including the whole-app
//! and selection queries) hits outright.
//!
//! [`IncrementalApp`] owns a raw module, a memory image and a store, takes
//! [`Edit`]s, and maintains the per-function raw fingerprints incrementally
//! — `apply` re-hashes only the touched function, which is the explicit
//! dirty mark on the wPST spine (the root's child subtree for that
//! function plus the whole-module exec/app/select keys above it). On the
//! next [`IncrementalApp::select`], clean root subtrees are answered from
//! the [`FrontStore`] (`accel(v, R)` design vectors from the sharded
//! [`DesignCache`]), and only the dirty spine is re-folded.
//!
//! Every result is bit-identical to a from-scratch `analyse → select` at
//! every step; `cayman-bench`'s differential and fuzz gates pin this over
//! the whole workload corpus.

use crate::app::{AnalyseOptions, Application};
use crate::CaymanError;
use cayman_analysis::access::{trip_count, AccessAnalysis};
use cayman_analysis::ctx::FuncCtx;
use cayman_analysis::memdep::{analyse_loop_deps, LoopDeps};
use cayman_analysis::profile::Profile;
use cayman_analysis::regions::RegionTree;
use cayman_analysis::scev::Scev;
use cayman_analysis::wpst::Wpst;
use cayman_ir::interp::{DecodedFunction, ExecProfile, Interp, Memory};
use cayman_ir::transform::{normalize_function, OptLevel, PassManager, PipelineStats};
use cayman_ir::verify::VerifyError;
use cayman_ir::{
    decode_function, fingerprint_arrays, fingerprint_function, fingerprint_memory,
    fingerprint_module_from_parts, FuncId, Function, Instr, Module,
};
use cayman_select::{
    run_selection_with_fronts, CaymanModel, DesignCache, FrontStore, SelectOptions, SelectionResult,
};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// FNV-1a over a `u64` slice (block-count fingerprints for trip keys).
fn fnv_u64s(vals: &[u64]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &v in vals {
        for b in v.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

/// Hit/miss counters for one query kind.
#[derive(Debug, Default, Clone, Copy)]
pub struct QueryCounter {
    /// Executions answered from cache.
    pub hits: u64,
    /// Executions that ran the query body.
    pub misses: u64,
}

impl QueryCounter {
    fn hit(&mut self, name: &'static str) {
        self.hits += 1;
        cayman_obs::counter(name, 1);
    }

    fn miss(&mut self, name: &'static str) {
        self.misses += 1;
        cayman_obs::counter(name, 1);
    }
}

/// Per-query-kind hit/miss accounting plus edit counts.
#[derive(Debug, Default, Clone, Copy)]
pub struct IncStats {
    /// Whole-module verification query.
    pub verify: QueryCounter,
    /// Per-function normalization query.
    pub normalize: QueryCounter,
    /// Per-function address-canonicalization shadow query (`-O2` only).
    pub shadow: QueryCounter,
    /// Per-function CFG/dominator/region-structure query.
    pub structure: QueryCounter,
    /// Per-function interpreter-decode query.
    pub decode: QueryCounter,
    /// Whole-module profiled-execution query.
    pub exec: QueryCounter,
    /// Per-function access/dependence-analysis query.
    pub dataflow: QueryCounter,
    /// Per-function trip-count query.
    pub trips: QueryCounter,
    /// Whole-application assembly query.
    pub app: QueryCounter,
    /// Whole-selection query.
    pub select: QueryCounter,
    /// Edits applied so far.
    pub edits: u64,
}

#[derive(Clone, Copy, PartialEq, Eq, Hash)]
struct NormKey {
    raw_fp: u64,
    arrays_fp: u64,
    level: OptLevel,
    verify_each: bool,
}

struct NormResult {
    func: Function,
    norm_fp: u64,
    stats: PipelineStats,
}

#[derive(Clone, Copy, PartialEq, Eq, Hash)]
struct DecodeKey {
    norm_fp: u64,
    arrays_fp: u64,
}

#[derive(Clone, Copy, PartialEq, Eq, Hash)]
struct ShadowKey {
    norm_fp: u64,
    arrays_fp: u64,
}

struct ShadowResult {
    /// The address-canonicalized clone of the normalized function. Same
    /// `InstrId`s/`ValueId`s/blocks/terminators as the executed body.
    func: Function,
    shadow_fp: u64,
    stats: PipelineStats,
}

struct FuncStructure {
    ctx: FuncCtx,
    tree: RegionTree,
}

#[derive(Clone, Copy, PartialEq, Eq, Hash)]
struct DataflowKey {
    norm_fp: u64,
    arrays_fp: u64,
}

struct FuncDataflow {
    accesses: AccessAnalysis,
    deps: Vec<LoopDeps>,
}

#[derive(Clone, Copy, PartialEq, Eq, Hash)]
struct ExecKey {
    norm_module_fp: u64,
    memory_fp: u64,
}

struct ExecResult {
    exec: ExecProfile,
    engine: &'static str,
}

#[derive(Clone, Copy, PartialEq, Eq, Hash)]
struct TripsKey {
    norm_fp: u64,
    arrays_fp: u64,
    bc_fp: u64,
}

#[derive(Clone, Copy, PartialEq, Eq, Hash)]
struct AppKey {
    module_fp: u64,
    memory_fp: u64,
    level: OptLevel,
    verify_each: bool,
}

#[derive(Clone, Copy, PartialEq, Eq, Hash)]
struct SelectKey {
    app: AppKey,
    model_fp: u64,
    alpha_bits: u64,
    prune_bits: u64,
}

/// All memoised query results. One store serves one logical application
/// across any number of edits — every key is content-derived, so stale
/// entries are merely unreachable, never wrong.
#[derive(Default)]
pub struct QueryStore {
    verified: HashSet<u64>,
    normalize: HashMap<NormKey, Arc<NormResult>>,
    shadow: HashMap<ShadowKey, Arc<ShadowResult>>,
    structure: HashMap<u64, Arc<FuncStructure>>,
    decode: HashMap<DecodeKey, Arc<Option<DecodedFunction>>>,
    exec: HashMap<ExecKey, Arc<ExecResult>>,
    dataflow: HashMap<DataflowKey, Arc<FuncDataflow>>,
    trips: HashMap<TripsKey, Arc<Vec<f64>>>,
    apps: HashMap<AppKey, Arc<Application>>,
    selections: HashMap<SelectKey, Arc<SelectionResult>>,
    /// Memoised `accel(v, R)` design vectors, shared across edits (keys
    /// carry the function content fingerprint).
    pub designs: DesignCache,
    /// Memoised per-function-subtree Pareto fronts.
    pub fronts: FrontStore,
    /// Hit/miss accounting.
    pub stats: IncStats,
}

impl QueryStore {
    /// An empty store.
    pub fn new() -> Self {
        QueryStore::default()
    }
}

/// Assembles a fully analysed [`Application`] over `store`'s queries.
///
/// `raw_fps` must be the per-function content fingerprints of `module`'s
/// (pre-normalization) functions — [`IncrementalApp`] maintains them
/// incrementally across edits; the batch path hashes them fresh.
pub(crate) fn assemble(
    store: &mut QueryStore,
    module: &Module,
    memory: Option<&Memory>,
    memory_fp: u64,
    opts: &AnalyseOptions,
    raw_fps: &[u64],
) -> Result<Arc<Application>, CaymanError> {
    let arrays_fp = fingerprint_arrays(&module.arrays);
    let module_fp = fingerprint_module_from_parts(&module.name, raw_fps, arrays_fp);
    let app_key = AppKey {
        module_fp,
        memory_fp,
        level: opts.opt_level,
        verify_each: opts.verify_each_pass,
    };
    if let Some(app) = store.apps.get(&app_key) {
        store.stats.app.hit("inc.query.app.hit");
        return Ok(Arc::clone(app));
    }
    store.stats.app.miss("inc.query.app.miss");
    let _app_span = cayman_obs::span!("inc.query.app", functions = module.functions.len());

    // Stage 1: verify (whole-module; a hit means this exact raw content
    // already verified clean).
    {
        let _s = cayman_obs::span!("analyse.verify");
        if store.verified.contains(&module_fp) {
            store.stats.verify.hit("inc.query.verify.hit");
        } else {
            store.stats.verify.miss("inc.query.verify.miss");
            let _q = cayman_obs::span!("inc.query.verify");
            module.verify()?;
            store.verified.insert(module_fp);
        }
    }

    // Stage 2: normalize, one keyed query per function. `-O2` *executes*
    // the `-O1` body (the extra canonicalization lives in analysis shadows,
    // stage 2b), so the normalize/structure/decode/exec caches are shared
    // between the two levels and observable behavior is bit-identical.
    let exec_level = match opts.opt_level {
        OptLevel::O2 => OptLevel::O1,
        lvl => lvl,
    };
    let mut working = module.clone();
    let mut norm_fps: Vec<u64> = Vec::with_capacity(working.functions.len());
    let mut normalize_stats = PipelineStats::default();
    {
        let _s = cayman_obs::span!("analyse.normalize");
        if exec_level == OptLevel::O0 {
            norm_fps.extend_from_slice(raw_fps);
        } else {
            for f in module.function_ids() {
                let key = NormKey {
                    raw_fp: raw_fps[f.index()],
                    arrays_fp,
                    level: exec_level,
                    verify_each: opts.verify_each_pass,
                };
                let cached = match store.normalize.get(&key) {
                    Some(hit) => {
                        store.stats.normalize.hit("inc.query.normalize.hit");
                        Arc::clone(hit)
                    }
                    None => {
                        store.stats.normalize.miss("inc.query.normalize.miss");
                        let _q = cayman_obs::span!("inc.query.normalize", func = f.index());
                        let stats =
                            normalize_function(&mut working, f, exec_level, opts.verify_each_pass)?;
                        let func = working.functions[f.index()].clone();
                        let norm_fp = fingerprint_function(&func);
                        let res = Arc::new(NormResult {
                            func,
                            norm_fp,
                            stats,
                        });
                        store.normalize.insert(key, Arc::clone(&res));
                        res
                    }
                };
                working.functions[f.index()] = cached.func.clone();
                norm_fps.push(cached.norm_fp);
                normalize_stats.merge(&cached.stats);
            }
        }
    }
    let norm_module_fp = fingerprint_module_from_parts(&working.name, &norm_fps, arrays_fp);

    // Stage 2b (`-O2` only): per-function address-canonicalization shadows.
    // The shadow never executes — verification happens on the whole module
    // in stage 1, and `address_canon`'s identity contract (pinned by the
    // workload differential suite) keeps every memory/phi/call instruction
    // in place — so the query runs on a single-function clone.
    let mut shadows: Vec<Option<Arc<ShadowResult>>> = vec![None; working.functions.len()];
    let mut analysis_fps = norm_fps.clone();
    if opts.opt_level == OptLevel::O2 {
        let _s = cayman_obs::span!("analyse.shadow");
        for f in working.function_ids() {
            let key = ShadowKey {
                norm_fp: norm_fps[f.index()],
                arrays_fp,
            };
            let cached = match store.shadow.get(&key) {
                Some(hit) => {
                    store.stats.shadow.hit("inc.query.shadow.hit");
                    Arc::clone(hit)
                }
                None => {
                    store.stats.shadow.miss("inc.query.shadow.miss");
                    let _q = cayman_obs::span!("inc.query.shadow", func = f.index());
                    let mut tmp = Module {
                        name: working.name.clone(),
                        functions: vec![working.functions[f.index()].clone()],
                        arrays: working.arrays.clone(),
                    };
                    let stats = PassManager::address_canon()
                        .run_function(&mut tmp, FuncId(0))
                        .expect("address_canon never verifies, so never fails");
                    let func = tmp.functions.pop().expect("one function");
                    let shadow_fp = fingerprint_function(&func);
                    let res = Arc::new(ShadowResult {
                        func,
                        shadow_fp,
                        stats,
                    });
                    store.shadow.insert(key, Arc::clone(&res));
                    res
                }
            };
            normalize_stats.merge(&cached.stats);
            if cached.shadow_fp != norm_fps[f.index()] {
                // Analysis facts now depend on both bodies: the executed
                // `-O1` one (schedules, profiles) and the shadow (SCEV).
                analysis_fps[f.index()] = fnv_u64s(&[norm_fps[f.index()], cached.shadow_fp]);
            }
            shadows[f.index()] = Some(cached);
        }
    }

    // Stage 3: profile — wPST from per-function structure queries, then the
    // whole-module execution query.
    let (wpst, exec_res, profile) = {
        let _s = cayman_obs::span!("analyse.profile");
        let mut trees = Vec::with_capacity(working.functions.len());
        let mut ctxs = Vec::with_capacity(working.functions.len());
        for f in working.function_ids() {
            let key = norm_fps[f.index()];
            let parts = match store.structure.get(&key) {
                Some(hit) => {
                    store.stats.structure.hit("inc.query.structure.hit");
                    Arc::clone(hit)
                }
                None => {
                    store.stats.structure.miss("inc.query.structure.miss");
                    let _q = cayman_obs::span!("inc.query.structure", func = f.index());
                    let func = working.function(f);
                    let ctx = FuncCtx::compute(func);
                    let tree = RegionTree::build(func, &ctx);
                    let parts = Arc::new(FuncStructure { ctx, tree });
                    store.structure.insert(key, Arc::clone(&parts));
                    parts
                }
            };
            trees.push(parts.tree.clone());
            ctxs.push(parts.ctx.clone());
        }
        let wpst = Wpst::from_parts(trees, ctxs);

        let exec_key = ExecKey {
            norm_module_fp,
            memory_fp,
        };
        let exec_res = match store.exec.get(&exec_key) {
            Some(hit) => {
                store.stats.exec.hit("inc.query.exec.hit");
                Arc::clone(hit)
            }
            None => {
                store.stats.exec.miss("inc.query.exec.miss");
                let _q = cayman_obs::span!("inc.query.exec");
                // Decode is only needed to execute, so its per-function
                // queries run lazily inside the exec miss.
                let mut decoded = Vec::with_capacity(working.functions.len());
                for f in working.function_ids() {
                    let key = DecodeKey {
                        norm_fp: norm_fps[f.index()],
                        arrays_fp,
                    };
                    let d = match store.decode.get(&key) {
                        Some(hit) => {
                            store.stats.decode.hit("inc.query.decode.hit");
                            Arc::clone(hit)
                        }
                        None => {
                            store.stats.decode.miss("inc.query.decode.miss");
                            let _q = cayman_obs::span!("inc.query.decode", func = f.index());
                            let d = Arc::new(decode_function(&working, f));
                            store.decode.insert(key, Arc::clone(&d));
                            d
                        }
                    };
                    decoded.push((*d).clone());
                }
                let mut interp = Interp::from_cached_decode(&working, decoded);
                let engine = interp.engine_name();
                if let Some(mem) = memory {
                    interp.memory = mem.clone();
                }
                let exec = interp.run(&[])?;
                let res = Arc::new(ExecResult { exec, engine });
                store.exec.insert(exec_key, Arc::clone(&res));
                res
            }
        };
        let profile = Profile::aggregate(&working, &wpst, &exec_res.exec);
        (wpst, exec_res, profile)
    };

    // Stage 4: analyse — per-function dataflow and trip-count queries.
    let mut accesses = Vec::with_capacity(working.functions.len());
    let mut deps = Vec::with_capacity(working.functions.len());
    let mut trips = Vec::with_capacity(working.functions.len());
    {
        let _s = cayman_obs::span!("analyse.dataflow");
        for f in working.function_ids() {
            let func = working.function(f);
            let ctx = &wpst.func_ctxs[f.index()];
            let dkey = DataflowKey {
                norm_fp: analysis_fps[f.index()],
                arrays_fp,
            };
            let df = match store.dataflow.get(&dkey) {
                Some(hit) => {
                    store.stats.dataflow.hit("inc.query.dataflow.hit");
                    Arc::clone(hit)
                }
                None => {
                    store.stats.dataflow.miss("inc.query.dataflow.miss");
                    let _q = cayman_obs::span!("inc.query.dataflow", func = f.index());
                    // At `-O2` with a changed shadow, analyse the shadow:
                    // identical CFG/loops (so `LoopId`s/`InstrId`s map back
                    // onto the executed body), but hoisted + strength-reduced
                    // address arithmetic that SCEV can linearize. The shadow
                    // moves pure ops between blocks, so it needs its own
                    // instruction→block snapshot.
                    let shadow_ctx;
                    let (afunc, actx) = match shadows[f.index()].as_deref() {
                        Some(s) if s.shadow_fp != norm_fps[f.index()] => {
                            shadow_ctx = FuncCtx::compute(&s.func);
                            (&s.func, &shadow_ctx)
                        }
                        _ => (func, ctx),
                    };
                    let mut scev = Scev::new(afunc, actx);
                    let aa = AccessAnalysis::run(&working, afunc, actx, &mut scev);
                    let dd = analyse_loop_deps(afunc, actx, &mut scev, &aa);
                    let df = Arc::new(FuncDataflow {
                        accesses: aa,
                        deps: dd,
                    });
                    store.dataflow.insert(dkey, Arc::clone(&df));
                    df
                }
            };
            let tkey = TripsKey {
                norm_fp: norm_fps[f.index()],
                arrays_fp,
                bc_fp: fnv_u64s(&profile.block_counts[f.index()]),
            };
            let tt = match store.trips.get(&tkey) {
                Some(hit) => {
                    store.stats.trips.hit("inc.query.trips.hit");
                    Arc::clone(hit)
                }
                None => {
                    store.stats.trips.miss("inc.query.trips.miss");
                    let _q = cayman_obs::span!("inc.query.trips", func = f.index());
                    let tt: Vec<f64> = ctx
                        .forest
                        .ids()
                        .map(|l| trip_count(&wpst, &profile, func, f, l).unwrap_or(1.0))
                        .collect();
                    let tt = Arc::new(tt);
                    store.trips.insert(tkey, Arc::clone(&tt));
                    tt
                }
            };
            accesses.push(df.accesses.clone());
            deps.push(df.deps.clone());
            trips.push((*tt).clone());
        }
    }

    let app = Arc::new(Application {
        module: working,
        wpst,
        profile,
        exec: exec_res.exec.clone(),
        accesses,
        deps,
        trips,
        profiling_engine: exec_res.engine,
        normalize_stats,
        content_fps: analysis_fps,
    });
    store.apps.insert(app_key, Arc::clone(&app));
    Ok(app)
}

/// One edit against an [`IncrementalApp`]'s raw module.
#[derive(Debug, Clone)]
pub enum Edit {
    /// Replace the body of an existing function.
    ReplaceFunction {
        /// Which function.
        func: FuncId,
        /// The new body (verified on the next analyse).
        body: Function,
    },
    /// Append a new function (it gets the next [`FuncId`]).
    AddFunction {
        /// The new function.
        body: Function,
    },
    /// Remove a function nothing calls; later functions are renumbered and
    /// callers of renumbered ids are rewritten (and thereby marked dirty).
    RemoveFunction {
        /// Which function.
        func: FuncId,
    },
    /// Re-normalize the whole application at a different level.
    SetOptLevel(OptLevel),
}

/// An application under edits: a raw module + memory image + query store.
///
/// `apply` is cheap — it mutates the raw module and re-fingerprints only
/// the touched functions. `analyse` and `select` then re-execute only the
/// queries whose keys changed; see the module docs for the full table.
pub struct IncrementalApp {
    module: Module,
    memory: Option<Memory>,
    memory_fp: u64,
    opts: AnalyseOptions,
    raw_fps: Vec<u64>,
    store: QueryStore,
}

impl IncrementalApp {
    /// Wraps a raw (pre-normalization) module with an empty store.
    pub fn new(module: Module, memory: Option<Memory>, opts: AnalyseOptions) -> Self {
        let raw_fps = module.functions.iter().map(fingerprint_function).collect();
        let memory_fp = memory.as_ref().map(fingerprint_memory).unwrap_or(0);
        IncrementalApp {
            module,
            memory,
            memory_fp,
            opts,
            raw_fps,
            store: QueryStore::new(),
        }
    }

    /// The current raw module.
    pub fn module(&self) -> &Module {
        &self.module
    }

    /// The current analyse options.
    pub fn options(&self) -> &AnalyseOptions {
        &self.opts
    }

    /// Query hit/miss accounting so far.
    pub fn stats(&self) -> &IncStats {
        &self.store.stats
    }

    /// Applies one edit. Only the touched functions are re-fingerprinted.
    ///
    /// # Errors
    ///
    /// `RemoveFunction` fails (leaving the module untouched) when another
    /// function still calls the target.
    pub fn apply(&mut self, edit: Edit) -> Result<(), CaymanError> {
        match edit {
            Edit::ReplaceFunction { func, body } => {
                self.raw_fps[func.index()] = fingerprint_function(&body);
                self.module.functions[func.index()] = body;
            }
            Edit::AddFunction { body } => {
                self.raw_fps.push(fingerprint_function(&body));
                self.module.functions.push(body);
            }
            Edit::RemoveFunction { func } => {
                for (i, caller) in self.module.functions.iter().enumerate() {
                    if i == func.index() {
                        continue;
                    }
                    let calls_target = caller
                        .instrs
                        .iter()
                        .any(|ins| matches!(ins, Instr::Call { callee, .. } if *callee == func));
                    if calls_target {
                        return Err(CaymanError::Verify(VerifyError {
                            func: caller.name.clone(),
                            message: format!(
                                "cannot remove `{}`: still called",
                                self.module.functions[func.index()].name
                            ),
                        }));
                    }
                }
                self.module.functions.remove(func.index());
                self.raw_fps.remove(func.index());
                // Renumber call targets above the removed id; the rewrite
                // changes those callers' content, which re-fingerprints them
                // (the content-addressed dirty mark).
                for (i, caller) in self.module.functions.iter_mut().enumerate() {
                    let mut changed = false;
                    for ins in &mut caller.instrs {
                        if let Instr::Call { callee, .. } = ins {
                            if *callee > func {
                                *callee = FuncId(callee.0 - 1);
                                changed = true;
                            }
                        }
                    }
                    if changed {
                        self.raw_fps[i] = fingerprint_function(caller);
                    }
                }
            }
            Edit::SetOptLevel(level) => {
                self.opts.opt_level = level;
            }
        }
        self.store.stats.edits += 1;
        cayman_obs::counter("inc.edit", 1);
        Ok(())
    }

    /// Replaces the profiling memory image (re-fingerprinted once, here).
    pub fn set_memory(&mut self, memory: Option<Memory>) {
        self.memory_fp = memory.as_ref().map(fingerprint_memory).unwrap_or(0);
        self.memory = memory;
    }

    /// Analyses the current module state, reusing every clean query.
    ///
    /// # Errors
    ///
    /// Fails when verification or profiled execution fails; the store keeps
    /// all previous results, so a failing edit can be reverted and
    /// re-analysed at full cache warmth.
    pub fn analyse(&mut self) -> Result<Arc<Application>, CaymanError> {
        assemble(
            &mut self.store,
            &self.module,
            self.memory.as_ref(),
            self.memory_fp,
            &self.opts,
            &self.raw_fps,
        )
    }

    /// Analyses and selects, reusing cached designs and per-function
    /// subtree fronts for clean wPST subtrees.
    ///
    /// The selection key ignores `opts.threads`/`opts.sched` (the front is
    /// thread-invariant); re-selection always runs the sequential reuse
    /// path.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`IncrementalApp::analyse`].
    pub fn select(&mut self, opts: &SelectOptions) -> Result<Arc<SelectionResult>, CaymanError> {
        let app = self.analyse()?;
        let arrays_fp = fingerprint_arrays(&self.module.arrays);
        let key = SelectKey {
            app: AppKey {
                module_fp: fingerprint_module_from_parts(
                    &self.module.name,
                    &self.raw_fps,
                    arrays_fp,
                ),
                memory_fp: self.memory_fp,
                level: self.opts.opt_level,
                verify_each: self.opts.verify_each_pass,
            },
            model_fp: opts.model.fingerprint(),
            alpha_bits: opts.alpha.to_bits(),
            prune_bits: opts.prune_share.to_bits(),
        };
        if let Some(hit) = self.store.selections.get(&key) {
            self.store.stats.select.hit("inc.query.select.hit");
            return Ok(Arc::clone(hit));
        }
        self.store.stats.select.miss("inc.query.select.miss");
        let _q = cayman_obs::span!("inc.query.select");
        let model = CaymanModel(opts.model.clone());
        let inputs = app.inputs();
        let result = run_selection_with_fronts(
            &app.module,
            &app.wpst,
            &app.profile,
            &inputs,
            opts,
            &model,
            &self.store.designs,
            &mut self.store.fronts,
        );
        drop(inputs);
        let result = Arc::new(result);
        self.store.selections.insert(key, Arc::clone(&result));
        Ok(result)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cayman_ir::builder::ModuleBuilder;
    use cayman_ir::instr::{Imm, Operand};
    use cayman_ir::Type;

    /// Two independent streaming kernels plus a caller — enough structure
    /// for per-function queries to show selective invalidation.
    fn two_kernel_module() -> Module {
        let mut mb = ModuleBuilder::new("inc");
        let x = mb.array("x", Type::F64, &[32]);
        let y = mb.array("y", Type::F64, &[32]);
        let ka = mb.function("ka", &[], None, |fb| {
            fb.counted_loop(0, 32, 1, |fb, i| {
                let v = fb.load_idx(x, &[i]);
                let w = fb.fmul(v, fb.fconst(2.0));
                fb.store_idx(x, &[i], w);
            });
            fb.ret(None);
        });
        let kb = mb.function("kb", &[], None, |fb| {
            fb.counted_loop(0, 32, 1, |fb, i| {
                let v = fb.load_idx(y, &[i]);
                let w = fb.fadd(v, fb.fconst(1.0));
                fb.store_idx(y, &[i], w);
            });
            fb.ret(None);
        });
        mb.function("main", &[], None, |fb| {
            fb.call(ka, &[], None);
            fb.call(kb, &[], None);
            fb.ret(None);
        });
        mb.finish()
    }

    /// `ka` with its multiplier constant nudged — a single-instruction edit.
    fn edited_ka(m: &Module) -> Function {
        let mut body = m.functions[0].clone();
        let mut edited = false;
        'outer: for instr in &mut body.instrs {
            if let Instr::Binary { lhs, rhs, .. } = instr {
                for op in [&mut *lhs, rhs] {
                    if let Operand::Const(Imm::Float(v)) = op {
                        *op = Operand::float(*v + 0.5);
                        edited = true;
                        break 'outer;
                    }
                }
            }
        }
        assert!(edited, "ka has a float immediate");
        body
    }

    fn fronts_bits(sel: &SelectionResult) -> Vec<(u64, u64, usize)> {
        sel.pareto
            .iter()
            .map(|s| (s.area.to_bits(), s.saved_seconds.to_bits(), s.kernels.len()))
            .collect()
    }

    #[test]
    fn incremental_matches_batch_bit_for_bit() {
        let m = two_kernel_module();
        let batch = Application::analyse(m.clone()).expect("batch analyses");
        let mut inc = IncrementalApp::new(m, None, AnalyseOptions::default());
        let app = inc.analyse().expect("incremental analyses");
        assert_eq!(app.module.to_text(), batch.module.to_text());
        assert_eq!(app.content_fps, batch.content_fps);
        assert_eq!(app.profile.block_counts, batch.profile.block_counts);
        assert_eq!(app.profile.total_cycles, batch.profile.total_cycles);
        assert_eq!(app.trips, batch.trips);
        assert_eq!(app.profiling_engine, batch.profiling_engine);

        let batch_inputs = batch.inputs();
        let batch_sel = cayman_select::run_selection(
            &batch.module,
            &batch.wpst,
            &batch.profile,
            &batch_inputs,
            &SelectOptions::default(),
        );
        let inc_sel = inc.select(&SelectOptions::default()).expect("selects");
        assert_eq!(fronts_bits(&inc_sel), fronts_bits(&batch_sel));
    }

    #[test]
    fn single_edit_reuses_clean_function_queries() {
        let m = two_kernel_module();
        let mut inc = IncrementalApp::new(m.clone(), None, AnalyseOptions::default());
        inc.select(&SelectOptions::default()).expect("cold select");
        let cold = *inc.stats();
        assert_eq!(cold.normalize.misses, 3, "three functions normalized");

        // Edit one function: the two clean functions answer from cache.
        inc.apply(Edit::ReplaceFunction {
            func: FuncId(0),
            body: edited_ka(&m),
        })
        .expect("applies");
        inc.select(&SelectOptions::default()).expect("re-select");
        let warm = *inc.stats();
        assert_eq!(warm.edits, 1);
        assert_eq!(
            warm.normalize.misses - cold.normalize.misses,
            1,
            "only the edited function re-normalizes"
        );
        assert_eq!(warm.normalize.hits - cold.normalize.hits, 2);
        assert_eq!(warm.dataflow.misses - cold.dataflow.misses, 1);
        // The module's dynamic behaviour changed, so execution re-runs...
        assert_eq!(warm.exec.misses - cold.exec.misses, 1);
        // ...but clean functions' decoded bodies are reused.
        assert_eq!(warm.decode.hits - cold.decode.hits, 2);
        assert_eq!(warm.app.misses - cold.app.misses, 1);
        assert_eq!(warm.select.misses - cold.select.misses, 1);
        // Clean sibling subtrees answer selection from the front store.
        assert!(inc.store.fronts.hits > 0, "clean subtree fronts reused");
    }

    #[test]
    fn reverting_an_edit_hits_every_cache() {
        let m = two_kernel_module();
        let mut inc = IncrementalApp::new(m.clone(), None, AnalyseOptions::default());
        let first = inc.select(&SelectOptions::default()).expect("cold");
        inc.apply(Edit::ReplaceFunction {
            func: FuncId(0),
            body: edited_ka(&m),
        })
        .expect("applies");
        inc.select(&SelectOptions::default()).expect("edited");
        inc.apply(Edit::ReplaceFunction {
            func: FuncId(0),
            body: m.functions[0].clone(),
        })
        .expect("reverts");
        let before = *inc.stats();
        let reverted = inc.select(&SelectOptions::default()).expect("reverted");
        let after = *inc.stats();
        // The salsa-style green path: content keys match the original state,
        // so both the whole-app and the selection query hit outright.
        assert_eq!(after.app.hits - before.app.hits, 1);
        assert_eq!(after.select.hits - before.select.hits, 1);
        assert_eq!(after.app.misses, before.app.misses);
        assert!(
            Arc::ptr_eq(&first, &reverted),
            "reverted selection is the cached original"
        );
    }

    #[test]
    fn remove_function_renumbers_callers_and_rejects_live_targets() {
        let m = two_kernel_module();
        let mut inc = IncrementalApp::new(m.clone(), None, AnalyseOptions::default());
        // ka is still called from main: removal must be rejected untouched.
        let err = inc.apply(Edit::RemoveFunction { func: FuncId(0) });
        assert!(err.is_err(), "live function cannot be removed");
        assert_eq!(inc.module().functions.len(), 3);

        // A module whose first function is genuinely dead: removal must
        // renumber kb and rewrite main's call target (marking main dirty).
        let mut mb = ModuleBuilder::new("inc2");
        let y = mb.array("y", Type::F64, &[32]);
        let dead = mb.function("dead", &[], None, |fb| {
            fb.ret(None);
        });
        let kb = mb.function("kb", &[], None, |fb| {
            fb.counted_loop(0, 32, 1, |fb, i| {
                let v = fb.load_idx(y, &[i]);
                let w = fb.fadd(v, fb.fconst(1.0));
                fb.store_idx(y, &[i], w);
            });
            fb.ret(None);
        });
        mb.function("main", &[], None, |fb| {
            fb.call(kb, &[], None);
            fb.ret(None);
        });
        let _ = dead;
        let m2 = mb.finish();
        let mut inc2 = IncrementalApp::new(m2, None, AnalyseOptions::default());
        inc2.apply(Edit::RemoveFunction { func: FuncId(0) })
            .expect("dead function removes");
        assert_eq!(inc2.module().functions.len(), 2);
        assert_eq!(inc2.module().functions[0].name, "kb");
        let app = inc2.analyse().expect("renumbered module analyses");
        assert_eq!(app.module.functions.len(), 2);
        assert!(app.total_cycles() > 0);
    }

    /// A kernel whose address arithmetic hides its stream-ness from `-O1`:
    /// the base offset is an opaque (load-derived) but loop-invariant
    /// product computed *inside* the loop, so only the `-O2` shadow's LICM
    /// moves the symbol definition out of the region and lets
    /// [`AccessInfo::is_stream_within`] prove the access a stream.
    fn invariant_product_module() -> Module {
        let mut mb = ModuleBuilder::new("o2");
        let dims = mb.array("dims", Type::I64, &[2]);
        let x = mb.array("x", Type::F64, &[64]);
        let y = mb.array("y", Type::F64, &[64]);
        mb.function("main", &[], None, |fb| {
            let zero = fb.iconst(0);
            let one = fb.iconst(1);
            let a = fb.load_idx_ty(dims, &[zero], Type::I64);
            let b = fb.load_idx_ty(dims, &[one], Type::I64);
            fb.counted_loop(0, 8, 1, |fb, i| {
                let base = fb.mul(a, b); // invariant, but defined in-loop
                let idx = fb.add(base, i);
                let v = fb.load_idx(x, &[idx]);
                fb.store_idx(y, &[i], v);
            });
            fb.ret(None);
        });
        mb.finish()
    }

    #[test]
    fn o2_shares_execution_with_o1_and_shadows_analysis() {
        let m = invariant_product_module();
        let mut inc = IncrementalApp::new(m.clone(), None, AnalyseOptions::default());
        let o1 = inc.analyse().expect("O1 analyses");
        assert_eq!(inc.stats().shadow.misses, 0, "no shadows at O1");

        inc.apply(Edit::SetOptLevel(OptLevel::O2)).expect("applies");
        let o2 = inc.analyse().expect("O2 analyses");
        // The executed body is the -O1 one: normalization and execution are
        // answered from the O1 run's caches, bit-identically.
        assert_eq!(inc.stats().normalize.hits, 1, "O1 normalize reused");
        assert_eq!(inc.stats().exec.hits, 1, "O1 execution reused");
        assert_eq!(o1.module.to_text(), o2.module.to_text());
        assert_eq!(o1.profile.block_counts, o2.profile.block_counts);
        assert_eq!(o1.profile.total_cycles, o2.profile.total_cycles);
        assert_eq!(o1.exec.return_value, o2.exec.return_value);
        // ...but the shadow ran, changed the function, and re-keyed both the
        // dataflow query and the function's content fingerprint.
        assert_eq!(inc.stats().shadow.misses, 1, "one function shadowed");
        assert_ne!(o1.content_fps[0], o2.content_fps[0], "analysis fp mixed");
        assert_eq!(inc.stats().dataflow.misses, 2, "shadow dataflow re-ran");

        // LICM moved `a*b` out of the loop in the shadow, so the x-load is a
        // stream within the loop at -O2 but not at -O1.
        let l = o2.wpst.func_ctxs[0].forest.ids().next().expect("one loop");
        let blocks = o2.wpst.func_ctxs[0].forest.get(l).blocks.clone();
        let x_load_streams = |app: &Application| {
            app.accesses[0]
                .accesses
                .iter()
                .find(|a| !a.is_store && a.array.index() == 1)
                .expect("x load analysed")
                .is_stream_within(&blocks)
        };
        assert!(x_load_streams(&o2), "shadow proves the stream");
        assert!(!x_load_streams(&o1), "-O1 cannot prove it");

        // Round-tripping back to -O1 is a pure app-level cache hit.
        inc.apply(Edit::SetOptLevel(OptLevel::O1)).expect("applies");
        let before = *inc.stats();
        let o1b = inc.analyse().expect("O1 again");
        assert_eq!(inc.stats().app.hits - before.app.hits, 1);
        assert!(Arc::ptr_eq(&o1, &o1b));
    }

    #[test]
    fn o2_shadow_is_a_noop_on_canonical_functions() {
        // Builder-canonical kernels (plain `load_idx(x, &[i])`) have nothing
        // for the shadow to rewrite: analysis fingerprints stay the -O1
        // fingerprints and the dataflow cache is shared across levels.
        let m = two_kernel_module();
        let mut inc = IncrementalApp::new(m, None, AnalyseOptions::default());
        let o1 = inc.analyse().expect("O1");
        let df_misses = inc.stats().dataflow.misses;
        inc.apply(Edit::SetOptLevel(OptLevel::O2)).expect("applies");
        let o2 = inc.analyse().expect("O2");
        assert_eq!(o1.content_fps, o2.content_fps, "no-op shadow keeps fps");
        assert_eq!(
            inc.stats().dataflow.misses,
            df_misses,
            "dataflow shared with O1"
        );
        assert_eq!(inc.stats().shadow.misses, 3);
    }

    #[test]
    fn set_opt_level_reanalyses_at_the_new_level() {
        let m = two_kernel_module();
        let mut inc = IncrementalApp::new(m, None, AnalyseOptions::o0());
        let raw = inc.analyse().expect("O0 analyses");
        assert_eq!(raw.normalize_stats.iterations, 0);
        inc.apply(Edit::SetOptLevel(OptLevel::O1)).expect("applies");
        let opt = inc.analyse().expect("O1 analyses");
        assert!(opt.normalize_stats.total_changes() > 0 || opt.normalize_stats.iterations > 0);
        // Observable behaviour unchanged across levels.
        assert_eq!(raw.exec.return_value, opt.exec.return_value);
        // Going back to O0 is a pure cache hit.
        inc.apply(Edit::SetOptLevel(OptLevel::O0)).expect("applies");
        let before = *inc.stats();
        let raw2 = inc.analyse().expect("O0 again");
        assert_eq!(inc.stats().app.hits - before.app.hits, 1);
        assert!(Arc::ptr_eq(&raw, &raw2));
    }

    #[test]
    fn add_function_extends_the_application() {
        let m = two_kernel_module();
        let mut inc = IncrementalApp::new(m.clone(), None, AnalyseOptions::default());
        inc.analyse().expect("analyses");
        inc.apply(Edit::AddFunction {
            body: m.functions[1].clone(),
        })
        .expect("applies");
        let app = inc.analyse().expect("re-analyses");
        assert_eq!(app.module.functions.len(), 4);
        assert_eq!(app.accesses.len(), 4);
        assert_eq!(app.content_fps.len(), 4);
    }
}
