//! Benchmark sweep: run the full Cayman flow plus both baselines on one
//! benchmark per suite and print a miniature Table II.
//!
//! ```text
//! cargo run --release --example benchmark_sweep
//! ```

use cayman::{Framework, SelectOptions, CVA6_TILE_AREA};

const PICKS: [&str; 4] = ["atax", "spmv", "epic", "nnet-test"];

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!(
        "{:<12} {:>6} | {:>8} {:>8} {:>8} | {:>4} {:>4} | {:>3} {:>3} {:>3} | {:>6}",
        "benchmark",
        "budget",
        "cayman",
        "novia",
        "qscores",
        "#SB",
        "#PR",
        "#C",
        "#D",
        "#S",
        "save%"
    );
    for name in PICKS {
        let w = cayman::workloads::by_name(name).expect("benchmark exists");
        let fw = Framework::from_workload(&w)?;
        let opts = SelectOptions::default();
        let cayman_sel = fw.select(&opts);
        let novia = fw.select_novia(&opts);
        let qscores = fw.select_qscores(&opts);
        for budget in [0.25, 0.65] {
            let rep = fw.report(&cayman_sel, budget);
            let area = budget * CVA6_TILE_AREA;
            println!(
                "{:<12} {:>5.0}% | {:>7.2}x {:>7.2}x {:>7.2}x | {:>4} {:>4} | {:>3} {:>3} {:>3} | {:>5.0}%",
                name,
                budget * 100.0,
                rep.speedup,
                fw.speedup(novia.best_under(area)),
                fw.speedup(qscores.best_under(area)),
                rep.sb,
                rep.pr,
                rep.c,
                rep.d,
                rep.s,
                rep.area_saving_pct,
            );
        }
    }
    Ok(())
}
