//! Hardware generation: select accelerators for a benchmark under the 25%
//! budget and emit structural Verilog for every kernel plus the merged
//! reusable-accelerator wrappers (§III-E / Fig. 5).
//!
//! ```text
//! cargo run --release --example generate_rtl [benchmark] [out_dir]
//! ```

use cayman::{Framework, SelectOptions, CVA6_TILE_AREA};
use std::fs;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut args = std::env::args().skip(1);
    let bench = args.next().unwrap_or_else(|| "3mm".to_string());
    let out_dir = args.next().unwrap_or_else(|| "target/rtl".to_string());

    let w =
        cayman::workloads::by_name(&bench).ok_or_else(|| format!("unknown benchmark `{bench}`"))?;
    let fw = Framework::from_workload(&w)?;
    let sel = fw.select(&SelectOptions::default());
    let sol = sel.best_under(0.25 * CVA6_TILE_AREA);

    println!(
        "{bench}: {} kernels selected at 25% budget (speedup {:.2}x)",
        sol.kernels.len(),
        fw.speedup(sol)
    );

    fs::create_dir_all(&out_dir)?;
    for (name, verilog) in fw.emit_rtl(sol) {
        let path = format!("{out_dir}/{name}.v");
        fs::write(&path, &verilog)?;
        println!("  wrote {path} ({} lines)", verilog.lines().count());
    }
    Ok(())
}
