//! Accelerator merging walk-through (§III-E, Fig. 5) on the `3mm` benchmark:
//! three structurally identical matrix-multiply kernels whose datapaths fuse
//! into one reusable, reconfigurable accelerator with per-kernel FSMs.
//!
//! ```text
//! cargo run --release --example merging_demo
//! ```

use cayman::{Framework, SelectOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let w = cayman::workloads::by_name("3mm").expect("3mm exists");
    let fw = Framework::from_workload(&w)?;
    let selection = fw.select(&SelectOptions::default());

    println!("3mm Pareto solutions and their merging outcomes:\n");
    println!(
        "{:>10} {:>8} {:>8} | {:>9} {:>9} {:>6} | {:>8} {:>7}",
        "area", "speedup", "kernels", "pre-merge", "merged", "save%", "reusable", "regions"
    );
    for sol in selection.pareto.iter().filter(|s| !s.kernels.is_empty()) {
        let merged = fw.merge(sol);
        println!(
            "{:>10.0} {:>7.2}x {:>8} | {:>9.0} {:>9.0} {:>5.0}% | {:>8} {:>7.1}",
            sol.area,
            fw.speedup(sol),
            sol.kernels.len(),
            merged.area_before,
            merged.area_after,
            merged.saving_fraction() * 100.0,
            merged.reusable.len(),
            merged.avg_regions_per_reusable(),
        );
    }

    // Detail the largest solution's merged datapath units.
    let best = selection.pareto.last().expect("non-empty");
    let merged = fw.merge(best);
    println!("\nlargest solution: {} merges performed", merged.merges);
    for (i, unit) in merged.units.iter().enumerate() {
        let classes: Vec<String> = unit
            .classes
            .iter()
            .map(|(c, n)| format!("{c:?}×{n}"))
            .collect();
        println!(
            "  unit {i}: serves kernels {:?}, FUs [{}], mux/config overhead {:.0}",
            unit.kernels,
            classes.join(", "),
            unit.mux_area
        );
    }
    Ok(())
}
