//! Quickstart: the paper's Fig. 2 walk-through.
//!
//! Builds the two-function application of Fig. 2a (`func0` with the `linear`
//! loop, `func1` with the `outer`/`dot_product` nest), prints its wPST
//! (Fig. 2c), runs profiling + analysis, executes Algorithm 1, and reports
//! the Pareto-optimal accelerator solutions with their configurations.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use cayman::ir::builder::ModuleBuilder;
use cayman::ir::Type;
use cayman::{Framework, SelectOptions, CVA6_TILE_AREA};

fn fig2_program() -> cayman::ir::Module {
    const N: i64 = 64;
    const M: i64 = 32;
    let mut mb = ModuleBuilder::new("fig2");
    let x = mb.array("x", Type::F64, &[N as usize]);
    let y = mb.array("y", Type::F64, &[N as usize]);
    let a = mb.array("A", Type::F64, &[N as usize, M as usize]);
    let b = mb.array("B", Type::F64, &[N as usize, M as usize]);
    let z = mb.array("z", Type::F64, &[N as usize]);

    // func0: linear: y[i] = k*x[i] + b
    let f0 = mb.function("func0", &[], None, |fb| {
        fb.counted_loop(0, N, 1, |fb, i| {
            let xv = fb.load_idx(x, &[i]);
            let t = fb.fmul(fb.fconst(2.0), xv);
            let v = fb.fadd(t, fb.fconst(1.0));
            fb.store_idx(y, &[i], v);
        });
        fb.ret(None);
    });

    // func1: outer / dot_product: z[i] += A[i][j] * B[i][j]
    let f1 = mb.function("func1", &[], None, |fb| {
        fb.counted_loop(0, N, 1, |fb, i| {
            fb.counted_loop(0, M, 1, |fb, j| {
                let av = fb.load_idx(a, &[i, j]);
                let bv = fb.load_idx(b, &[i, j]);
                let p = fb.fmul(av, bv);
                let zv = fb.load_idx(z, &[i]);
                let s = fb.fadd(zv, p);
                fb.store_idx(z, &[i], s);
            });
        });
        fb.ret(None);
    });

    mb.function("main", &[], None, |fb| {
        fb.call(f0, &[], None);
        fb.call(f1, &[], None);
        fb.ret(None);
    });
    mb.finish()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let module = fig2_program();
    println!("=== IR (excerpt) ===");
    for line in module.to_text().lines().take(18) {
        println!("{line}");
    }
    println!("...\n");

    let fw = Framework::from_module(module)?;
    println!("=== wPST (Fig. 2c) ===");
    print!("{}", fw.wpst_text());

    println!("\n=== profiling ===");
    println!(
        "total CPU cycles: {}  (T_all = {:.2} µs at 1.5 GHz)",
        fw.app.total_cycles(),
        fw.app.total_cycles() as f64 / 1.5e9 * 1e6
    );

    let selection = fw.select(&SelectOptions::default());
    println!(
        "\n=== Algorithm 1: {} Pareto-optimal solutions ({} vertices visited, {} configs evaluated) ===",
        selection.pareto.len(),
        selection.visited,
        selection.configs_evaluated
    );
    for sol in &selection.pareto {
        let (sb, pr) = sol.sb_pr();
        let (c, d, s, lb) = sol.iface_counts();
        println!(
            "  area {:>7.0} ({:>5.1}% tile)  speedup {:>6.2}x  kernels {}  #SB {sb} #PR {pr}  #C {c} #D {d} #S {s} #LB {lb}",
            sol.area,
            100.0 * sol.area / CVA6_TILE_AREA,
            fw.speedup(sol),
            sol.kernels.len(),
        );
    }

    let report = fw.report(&selection, 0.25);
    println!("\n=== 25% budget pick ===");
    println!(
        "speedup {:.2}x, merging saves {:.0}% area across {} reusable accelerator(s)",
        report.speedup, report.area_saving_pct, report.reusable
    );
    Ok(())
}
