//! Data-access-interface exploration (§III-C): how the β scratchpad
//! heuristic and the coupled-only ablation change the interface mix and the
//! achieved speedup on a reuse-heavy kernel.
//!
//! ```text
//! cargo run --release --example interface_explorer
//! ```

use cayman::{Framework, ModelOptions, SelectOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // doitgen re-reads the C4 matrix for every (r,q) pair — the archetypal
    // scratchpad candidate.
    let w = cayman::workloads::by_name("doitgen").expect("doitgen exists");
    let fw = Framework::from_workload(&w)?;

    println!("β sweep on doitgen (scratchpad heuristic: count ≥ β × footprint):\n");
    println!(
        "{:>6} | {:>8} | {:>3} {:>3} {:>3}",
        "beta", "speedup", "#C", "#D", "#S"
    );
    for beta in [1.0, 2.0, 4.0, 16.0, 1e9] {
        let opts = SelectOptions {
            model: ModelOptions {
                beta,
                ..Default::default()
            },
            ..Default::default()
        };
        let sel = fw.select(&opts);
        let rep = fw.report(&sel, 0.65);
        println!(
            "{:>6.0} | {:>7.2}x | {:>3} {:>3} {:>3}",
            beta, rep.speedup, rep.c, rep.d, rep.s
        );
    }

    println!("\ncoupled-only ablation (Fig. 6's ◆ vs ● series):");
    let full = fw.select(&SelectOptions::default());
    let coupled = fw.select(&SelectOptions {
        model: ModelOptions::coupled_only(),
        ..Default::default()
    });
    let rf = fw.report(&full, 0.65);
    let rc = fw.report(&coupled, 0.65);
    println!(
        "  full Cayman:    {:.2}x  (#C {} #D {} #S {})",
        rf.speedup, rf.c, rf.d, rf.s
    );
    println!(
        "  coupled-only:   {:.2}x  (#C {} #D {} #S {})",
        rc.speedup, rc.c, rc.d, rc.s
    );
    println!(
        "  interface specialisation buys {:.1}x",
        rf.speedup / rc.speedup
    );
    Ok(())
}
